"""Shared fixtures: circuits, fault lists and ground-truth simulators."""

from __future__ import annotations

import pytest

from repro.circuit import GeneratorSpec, full_scan, generate_netlist, load_circuit
from repro.faults import collapse
from repro.sim import FaultSimulator, TestSet


@pytest.fixture(scope="session")
def c17():
    return load_circuit("c17")


@pytest.fixture(scope="session")
def s27():
    return load_circuit("s27")


@pytest.fixture(scope="session")
def s27_scan(s27):
    scanned, _ = full_scan(s27)
    return scanned


@pytest.fixture(scope="session")
def c17_faults(c17):
    return collapse(c17)


@pytest.fixture(scope="session")
def s27_faults(s27_scan):
    return collapse(s27_scan)


@pytest.fixture(scope="session")
def c17_exhaustive_sim(c17):
    return FaultSimulator(c17, TestSet.exhaustive(c17.inputs))


@pytest.fixture(scope="session")
def s27_exhaustive_sim(s27_scan):
    return FaultSimulator(s27_scan, TestSet.exhaustive(s27_scan.inputs))


def tiny_spec(seed: int, gates: int = 30) -> GeneratorSpec:
    """A small synthetic circuit spec for randomized tests."""
    return GeneratorSpec(
        f"tiny{seed}",
        n_inputs=5,
        n_outputs=3,
        n_flip_flops=2,
        n_gates=gates,
        seed=seed,
    )


@pytest.fixture(scope="session")
def tiny_circuits():
    """A handful of small deterministic random circuits (scan view)."""
    circuits = []
    for seed in range(4):
        netlist = generate_netlist(tiny_spec(seed))
        scanned, _ = full_scan(netlist)
        circuits.append(scanned)
    return circuits
