"""Tests for the cause-effect diagnosis engine."""

import pytest

from repro.atpg import injected_copy
from repro.diagnosis import Diagnoser, observe_defect, observe_fault
from repro.dictionaries import FullDictionary, PassFailDictionary
from tests.util import build_sd
from repro.sim import ResponseTable, TestSet


@pytest.fixture(scope="module")
def setup(s27_scan, s27_faults):
    tests = TestSet.random(s27_scan.inputs, 24, seed=8)
    table = ResponseTable.build(s27_scan, s27_faults, tests)
    return s27_scan, s27_faults, tests, table


class TestObserve:
    def test_observe_fault_matches_table(self, setup):
        netlist, faults, tests, table = setup
        for i in (0, 7, len(faults) - 1):
            observed = observe_fault(netlist, tests, faults[i])
            assert observed == [table.signature(i, j) for j in range(len(tests))]

    def test_observe_defect_equals_observe_fault(self, setup):
        netlist, faults, tests, _ = setup
        fault = faults[3]
        via_sim = observe_fault(netlist, tests, fault)
        via_netlist = observe_defect(netlist, injected_copy(netlist, fault), tests)
        assert via_sim == via_netlist

    def test_interface_mismatch_rejected(self, setup, c17):
        netlist, _, tests, _ = setup
        with pytest.raises(ValueError, match="interface"):
            observe_defect(netlist, c17, tests)


class TestDiagnoser:
    def test_full_dictionary_diagnoses_exactly(self, setup):
        netlist, faults, tests, table = setup
        diagnoser = Diagnoser(FullDictionary(table))
        for i in range(0, len(faults), 5):
            observed = observe_fault(netlist, tests, faults[i])
            diagnosis = diagnoser.diagnose(observed)
            assert faults[i] in diagnosis.exact
            # Everything in the exact set shares the injected fault's row.
            row = table.full_row(i)
            for candidate in diagnosis.exact:
                assert table.full_row(faults.index(candidate)) == row

    def test_candidate_sets_ordered_by_resolution(self, setup):
        """full exact-candidate sets are never larger than pass/fail's."""
        netlist, faults, tests, table = setup
        full = Diagnoser(FullDictionary(table))
        passfail = Diagnoser(PassFailDictionary(table))
        for i in range(0, len(faults), 3):
            observed = observe_fault(netlist, tests, faults[i])
            assert len(full.diagnose(observed).exact) <= len(
                passfail.diagnose(observed).exact
            )

    def test_samediff_diagnoses_injected_faults(self, setup):
        netlist, faults, tests, table = setup
        dictionary, _ = build_sd(table, calls=5, seed=1)
        diagnoser = Diagnoser(dictionary)
        for i in range(0, len(faults), 4):
            observed = observe_fault(netlist, tests, faults[i])
            diagnosis = diagnoser.diagnose(observed)
            assert faults[i] in diagnosis.exact

    def test_ranked_scores_bounded_by_tests(self, setup):
        netlist, faults, tests, table = setup
        diagnoser = Diagnoser(PassFailDictionary(table))
        observed = observe_fault(netlist, tests, faults[0])
        diagnosis = diagnoser.diagnose(observed, limit=5)
        assert len(diagnosis.ranked) == 5
        assert all(0 <= score <= len(tests) for _, score in diagnosis.ranked)
        assert diagnosis.ranked[0][1] == len(tests)

    def test_unique_property(self, setup):
        _, _, _, table = setup
        diagnosis_cls = Diagnoser(FullDictionary(table)).diagnose(
            [table.signature(0, j) for j in range(table.n_tests)]
        )
        assert diagnosis_cls.is_unique == (diagnosis_cls.candidate_count == 1)
