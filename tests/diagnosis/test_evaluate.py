"""Tests for defect-injection evaluation campaigns."""

import pytest

from repro.diagnosis import double_fault_campaign, single_fault_campaign
from repro.dictionaries import FullDictionary, PassFailDictionary
from tests.util import build_sd
from repro.sim import ResponseTable, TestSet


@pytest.fixture(scope="module")
def setup(s27_scan, s27_faults):
    tests = TestSet.random(s27_scan.inputs, 24, seed=12)
    table = ResponseTable.build(s27_scan, s27_faults, tests)
    samediff, _ = build_sd(table, calls=5, seed=0)
    dictionaries = [FullDictionary(table), PassFailDictionary(table), samediff]
    return s27_scan, tests, dictionaries


class TestSingleFaultCampaign:
    def test_all_dictionaries_reported(self, setup):
        netlist, tests, dictionaries = setup
        results = single_fault_campaign(netlist, tests, dictionaries, sample=15, seed=1)
        assert set(results) == {"full", "pass/fail", "same/different"}
        for result in results.values():
            assert result.injections == 15

    def test_resolution_ordering(self, setup):
        """Mean candidate-set size: full <= same/different <= pass/fail."""
        netlist, tests, dictionaries = setup
        results = single_fault_campaign(netlist, tests, dictionaries, sample=25, seed=2)
        assert (
            results["full"].mean_candidates
            <= results["same/different"].mean_candidates
            <= results["pass/fail"].mean_candidates
        )

    def test_modelled_fault_always_in_top10(self, setup):
        netlist, tests, dictionaries = setup
        results = single_fault_campaign(netlist, tests, dictionaries, sample=20, seed=3)
        # The injected fault's own row matches perfectly, so the full
        # dictionary must place it within the first ten candidates.
        assert results["full"].top10_accuracy == 1.0

    def test_metrics_well_formed(self, setup):
        netlist, tests, dictionaries = setup
        results = single_fault_campaign(netlist, tests, dictionaries, sample=10, seed=4)
        for result in results.values():
            assert 0.0 <= result.unique_fraction <= 1.0
            assert 0.0 <= result.top1_accuracy <= result.top10_accuracy <= 1.0
            assert result.mean_candidates >= 0.0


class TestDoubleFaultCampaign:
    def test_campaign_runs(self, setup):
        netlist, tests, dictionaries = setup
        results = double_fault_campaign(netlist, tests, dictionaries, sample=10, seed=5)
        for result in results.values():
            assert result.injections <= 10
            assert result.injections > 0

    def test_empty_result_metrics(self):
        from repro.diagnosis.evaluate import CampaignResult

        empty = CampaignResult("full")
        assert empty.unique_fraction == 0.0
        assert empty.mean_candidates == 0.0
        assert empty.top1_accuracy == 0.0
