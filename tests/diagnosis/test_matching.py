"""Tests for non-modelled-defect matching strategies."""

import pytest

from repro.atpg import injected_copy
from repro.diagnosis import observe_defect, observe_fault
from repro.diagnosis.matching import (
    MatchScore,
    Policy,
    rank_candidates,
    score_fault,
    slat_candidates,
)
from repro.sim import ResponseTable, TestSet


@pytest.fixture(scope="module")
def setup(s27_scan, s27_faults):
    tests = TestSet.random(s27_scan.inputs, 24, seed=41)
    table = ResponseTable.build(s27_scan, s27_faults, tests)
    return s27_scan, tests, table


class TestScoreFault:
    def test_self_match_is_all_exact(self, setup, s27_faults):
        netlist, tests, table = setup
        for i in (0, 5, 11):
            observed = observe_fault(netlist, tests, s27_faults[i])
            score = score_fault(table, i, observed)
            assert score.mispredicted_fail == 0
            assert score.unexplained_fail == 0
            assert score.subset_fail == score.superset_fail == 0
            assert score.exact_fail + score.pass_agree == table.n_tests
            assert score.slat_consistent or score.exact_fail == 0

    def test_categories_partition_tests(self, setup, s27_faults):
        netlist, tests, table = setup
        observed = observe_fault(netlist, tests, s27_faults[3])
        for i in range(table.n_faults):
            score = score_fault(table, i, observed)
            total = (
                score.exact_fail
                + score.subset_fail
                + score.superset_fail
                + score.overlap_fail
                + score.unexplained_fail
                + score.mispredicted_fail
                + score.pass_agree
            )
            assert total == table.n_tests

    def test_length_checked(self, setup):
        _, _, table = setup
        with pytest.raises(ValueError):
            score_fault(table, 0, [()])

    def test_subset_superset_detection(self):
        """Hand-built: prediction {0} vs observation {0,1} is a subset."""
        from repro.faults import Fault

        faults = [Fault("f0", 0)]
        tests = TestSet(("i",), [0])
        table = ResponseTable(
            ("z0", "z1"), faults, tests, [{0: (0,)}], {"z0": 0, "z1": 0}
        )
        score = score_fault(table, 0, [(0, 1)])
        assert score.subset_fail == 1
        score = score_fault(table, 0, [(1,)])
        assert score.unexplained_fail == 1


class TestRanking:
    def test_injected_fault_ranks_first_exact(self, setup, s27_faults):
        netlist, tests, table = setup
        observed = observe_fault(netlist, tests, s27_faults[7])
        for policy in Policy:
            ranked = rank_candidates(table, observed, policy=policy, limit=3)
            top_faults = [fault for fault, _ in ranked]
            # The injected fault (or an equivalent) must top every policy.
            top_score = score_fault(
                table, s27_faults.index(top_faults[0]), observed
            )
            own_score = score_fault(table, 7, observed)
            assert top_score.exact_fail >= own_score.exact_fail

    def test_double_fault_slat(self, setup, s27_faults):
        netlist, tests, table = setup
        defective = injected_copy(
            injected_copy(netlist, s27_faults[2]), s27_faults[16]
        )
        observed = observe_defect(netlist, defective, tests)
        ranked = rank_candidates(table, observed, policy=Policy.INTERSECTION, limit=10)
        assert len(ranked) == 10
        scores = [score for _, score in ranked]
        assert scores[0].explained_fail >= scores[-1].explained_fail

    def test_limit_respected(self, setup, s27_faults):
        netlist, tests, table = setup
        observed = observe_fault(netlist, tests, s27_faults[0])
        assert len(rank_candidates(table, observed, limit=4)) == 4


class TestSlatCandidates:
    def test_modelled_fault_is_slat_consistent(self, setup, s27_faults):
        netlist, tests, table = setup
        observed = observe_fault(netlist, tests, s27_faults[9])
        candidates = slat_candidates(table, observed)
        assert s27_faults[9] in candidates

    def test_passing_chip_has_no_candidates(self, setup):
        _, tests, table = setup
        observed = [()] * table.n_tests
        assert slat_candidates(table, observed) == []
