"""Masking-envelope multi-fault matching: hand cases and exact-match parity."""

import pytest

from repro.diagnosis.multiplet import (
    MultipletMatch,
    compose_observation,
    envelope,
    envelope_violations,
    match_multiplets,
    multiplet_matches,
)
from repro.dictionaries import FullDictionary
from repro.faults import Fault
from repro.sim import ResponseTable, TestSet
from tests.util import random_table


def hand_table():
    """Three faults, two tests, three outputs — masking on z1.

    test 0:  f0 fails {z0, z1},  f1 fails {z1, z2},  f2 passes
    test 1:  f0 fails {z0},      f1 passes,          f2 fails {z2}
    """
    faults = [Fault("f0", 0), Fault("f1", 0), Fault("f2", 0)]
    tests = TestSet(("i0",), [0, 0])
    failing = [
        {0: (0, 1), 1: (0,)},
        {0: (1, 2)},
        {1: (2,)},
    ]
    return ResponseTable(
        ("z0", "z1", "z2"), faults, tests, failing, {"z0": 0, "z1": 0, "z2": 0}
    )


class TestEnvelope:
    def test_hand_computed_bounds(self):
        table = hand_table()
        env = envelope(table, (0, 1), 0)
        # z0 and z2 are each failed by exactly one member: must fail.
        assert env.lower == frozenset({0, 2})
        # z1 is failed by both: may mask, so it is upper-only.
        assert env.upper == frozenset({0, 1, 2})

    def test_singleton_envelope_is_the_exact_signature(self):
        table = hand_table()
        for i in range(table.n_faults):
            for j in range(table.n_tests):
                env = envelope(table, (i,), j)
                signature = frozenset(table.signature(i, j))
                assert env.lower == env.upper == signature

    def test_admits_masked_and_unmasked(self):
        table = hand_table()
        env = envelope(table, (0, 1), 0)
        assert env.admits((0, 1, 2))   # nothing masked
        assert env.admits((0, 2))      # z1 masked away
        assert not env.admits((0,))    # z2 is a unique driver: must fail
        assert not env.admits(())      # lower bound not met

    def test_violations_count_and_budget_early_stop(self):
        table = hand_table()
        observed = [(0,), (0,)]  # test 0 violates the (0,1) envelope
        assert envelope_violations(table, (0, 1), observed) == 1
        assert envelope_violations(table, (0, 1), observed, budget=0) == 1
        assert not multiplet_matches(table, (0, 1), observed)

    def test_length_checked(self):
        table = hand_table()
        with pytest.raises(ValueError):
            envelope_violations(table, (0,), [()])


class TestComposeObservation:
    def test_union_when_nothing_masked(self):
        table = hand_table()
        observed = compose_observation(table, (0, 1))
        assert observed == [(0, 1, 2), (0,)]
        assert multiplet_matches(table, (0, 1), observed)

    def test_masked_output_is_dropped(self):
        table = hand_table()
        observed = compose_observation(table, (0, 1), masked=[(0, 1)])
        assert observed == [(0, 2), (0,)]
        assert multiplet_matches(table, (0, 1), observed)

    def test_unmaskable_pair_rejected(self):
        table = hand_table()
        # z0 on test 0 has a single driver (f0): masking it is outside
        # the model, and a lower-bound output may never be masked.
        with pytest.raises(ValueError):
            compose_observation(table, (0, 1), masked=[(0, 0)])
        # An output no member fails is not maskable either.
        with pytest.raises(ValueError):
            compose_observation(table, (0, 2), masked=[(1, 1)])


class TestMatchMultiplets:
    def test_single_fault_parity_with_exact_matching(self):
        """max_faults=1, flip_budget=0 reproduces the full dictionary's
        exact candidate list byte-for-byte."""
        table = random_table(24, 16, 3, seed=7, density=0.4)
        full = FullDictionary(table)
        for i in (0, 5, 13, 23):
            observed = list(table.full_row(i))
            matches = match_multiplets(
                table, observed, max_faults=1, flip_budget=0
            )
            assert [m.members for m in matches] == [
                (index,) for index in full.exact_candidates(observed)
            ]
            assert all(m.flips == 0 for m in matches)

    def test_double_fault_recovered(self):
        table = random_table(24, 16, 3, seed=7, density=0.4)
        members = (3, 11)
        observed = compose_observation(table, members)
        matches = match_multiplets(table, observed, max_faults=2)
        assert any(m.members == members for m in matches)

    def test_masked_double_still_matches(self):
        table = hand_table()
        observed = compose_observation(table, (0, 1), masked=[(0, 1)])
        matches = match_multiplets(table, observed, max_faults=2)
        assert (0, 1) in [m.members for m in matches]

    def test_minimal_pruning_drops_dominated_pairs(self):
        """When a single fault explains the observation exactly, no pair
        containing it (at equal flips) survives minimal pruning."""
        table = random_table(24, 16, 3, seed=7, density=0.4)
        observed = list(table.full_row(4))
        matches = match_multiplets(table, observed, max_faults=2)
        singles = {m.members[0] for m in matches if m.size == 1}
        assert 4 in singles
        # No admitted pair strictly contains an admitted single with
        # no-worse flips.
        by_members = {m.members: m.flips for m in matches}
        for members, flips in by_members.items():
            if len(members) == 2:
                for s in members:
                    if (s,) in by_members:
                        assert by_members[(s,)] > flips

    def test_flip_budget_recovers_corrupted_observation(self):
        table = random_table(24, 16, 3, seed=9, density=0.4)
        observed = list(table.full_row(8))
        observed[5] = () if observed[5] else (0,)
        assert match_multiplets(table, observed, max_faults=1) == []
        matches = match_multiplets(
            table, observed, max_faults=1, flip_budget=1
        )
        assert (8,) in [m.members for m in matches]

    def test_ranking_and_limit(self):
        table = random_table(24, 16, 3, seed=9, density=0.4)
        observed = compose_observation(table, (2, 17))
        matches = match_multiplets(
            table, observed, max_faults=2, flip_budget=1
        )
        keys = [m.sort_key() for m in matches]
        assert keys == sorted(keys)
        limited = match_multiplets(
            table, observed, max_faults=2, flip_budget=1, limit=3
        )
        assert limited == matches[:3]

    def test_render(self):
        table = hand_table()
        match = MultipletMatch((0, 2), 0)
        assert match.render(table.faults) == "f0/sa0+f2/sa0"

    def test_argument_validation(self):
        table = hand_table()
        with pytest.raises(ValueError):
            match_multiplets(table, [(), ()], max_faults=0)
        with pytest.raises(ValueError):
            match_multiplets(table, [(), ()], flip_budget=-1)
        with pytest.raises(ValueError):
            match_multiplets(table, [()])
