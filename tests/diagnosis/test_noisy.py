"""Flip-budget ranking: budget 0 must equal exact matching byte-for-byte."""

import pytest

from repro.diagnosis.noisy import (
    admitted_candidates,
    rank_noisy,
    rank_noisy_prefix,
    response_distance,
)
from repro.diagnosis.truncated import TruncatedLog, truncate_log
from repro.dictionaries import FullDictionary
from tests.util import random_table


@pytest.fixture(scope="module")
def table():
    return random_table(30, 20, 3, seed=5, density=0.4)


class TestResponseDistance:
    def test_own_row_is_zero(self, table):
        for i in (0, 7, 29):
            assert response_distance(table, i, list(table.full_row(i))) == 0

    def test_counts_differing_tests(self, table):
        observed = list(table.full_row(3))
        observed[2] = () if observed[2] else (0,)
        observed[9] = () if observed[9] else (0, 1, 2)
        distance = response_distance(table, 3, observed)
        assert distance == 2

    def test_budget_early_stop(self, table):
        observed = [(0, 1, 2)] * table.n_tests
        assert response_distance(table, 0, observed, budget=3) == 4

    def test_length_checked(self, table):
        with pytest.raises(ValueError):
            response_distance(table, 0, [()])


class TestRankNoisy:
    def test_budget_zero_equals_exact_matching(self, table):
        """The admitted list at flip_budget=0 is the exact-candidate
        list of the full dictionary — same faults, same order."""
        full = FullDictionary(table)
        for i in range(table.n_faults):
            observed = list(table.full_row(i))
            scores = rank_noisy(table, observed, flip_budget=0)
            assert [s.fault_index for s in scores] == full.exact_candidates(
                observed
            )
            assert all(s.flips == 0 for s in scores)
            assert admitted_candidates(table, observed) == [
                s.fault_index for s in scores
            ]

    def test_budget_one_recovers_corrupted_row(self, table):
        observed = list(table.full_row(12))
        observed[4] = () if observed[4] else (1,)
        assert rank_noisy(table, observed, flip_budget=0) == []
        scores = rank_noisy(table, observed, flip_budget=1)
        assert 12 in [s.fault_index for s in scores]
        assert all(s.flips <= 1 for s in scores)

    def test_ranking_is_sorted_and_deterministic(self, table):
        observed = list(table.full_row(0))
        observed[1] = (0, 1)
        scores = rank_noisy(table, observed, flip_budget=3)
        keys = [s.sort_key() for s in scores]
        assert keys == sorted(keys)
        assert scores == rank_noisy(table, observed, flip_budget=3)

    def test_limit(self, table):
        observed = list(table.full_row(0))
        scores = rank_noisy(table, observed, flip_budget=4)
        limited = rank_noisy(table, observed, flip_budget=4, limit=2)
        assert limited == scores[:2]

    def test_negative_budget_rejected(self, table):
        with pytest.raises(ValueError):
            rank_noisy(table, [()] * table.n_tests, flip_budget=-1)


class TestRankNoisyPrefix:
    def test_complete_log_equals_rank_noisy(self, table):
        observed = list(table.full_row(6))
        observed[3] = () if observed[3] else (2,)
        log = TruncatedLog(tuple(tuple(s) for s in observed), table.n_tests)
        assert rank_noisy_prefix(
            table, log, flip_budget=2
        ) == rank_noisy(table, observed, flip_budget=2)

    def test_tail_is_unknown_not_disagreement(self, table):
        """A fault that disagrees only past the cutoff stays at 0 flips."""
        observed = list(table.full_row(10))
        log = truncate_log(observed, max_failures=2)
        assert log.cutoff < table.n_tests
        scores = rank_noisy_prefix(table, log, flip_budget=0)
        by_index = {s.fault_index: s for s in scores}
        assert by_index[10].flips == 0
        # The prefix admits at least as many candidates as the full row.
        full_row = rank_noisy(table, observed, flip_budget=0)
        assert len(scores) >= len(full_row)

    def test_cutoff_validated(self, table):
        log = TruncatedLog(((),) * (table.n_tests + 1), table.n_tests + 1)
        with pytest.raises(ValueError):
            rank_noisy_prefix(table, log)
        with pytest.raises(ValueError):
            rank_noisy_prefix(
                table, TruncatedLog((), 0), flip_budget=-1
            )
