"""Tests for diagnosis from truncated tester logs."""

import pytest

from repro.diagnosis import observe_fault
from repro.diagnosis.truncated import (
    TruncatedLog,
    exact_prefix_candidates,
    rank_truncated,
    score_truncated,
    truncate_log,
)
from repro.sim import PASS, ResponseTable, TestSet


@pytest.fixture(scope="module")
def setup(s27_scan, s27_faults):
    tests = TestSet.random(s27_scan.inputs, 24, seed=61)
    table = ResponseTable.build(s27_scan, s27_faults, tests)
    return s27_scan, tests, table


class TestTruncateLog:
    def test_stops_after_nth_failure(self, setup, s27_faults):
        netlist, tests, table = setup
        observed = observe_fault(netlist, tests, s27_faults[0])
        log = truncate_log(observed, max_failures=2)
        assert log.observed_failures <= 2
        if log.observed_failures == 2:
            assert log.responses[-1] != PASS
            assert log.cutoff <= len(observed)

    def test_complete_log_when_failures_scarce(self, setup, s27_faults):
        netlist, tests, table = setup
        observed = observe_fault(netlist, tests, s27_faults[0])
        log = truncate_log(observed, max_failures=10**6)
        assert log.cutoff == len(observed)

    def test_validation(self):
        with pytest.raises(ValueError):
            truncate_log([], 0)


class TestScoring:
    def test_injected_fault_consistent_on_prefix(self, setup, s27_faults):
        netlist, tests, table = setup
        for i in (0, 6, 13):
            observed = observe_fault(netlist, tests, s27_faults[i])
            log = truncate_log(observed, max_failures=1)
            score = score_truncated(table, i, log)
            assert score.consistent
            assert score.matching_tests == log.cutoff

    def test_ranking_puts_injected_first(self, setup, s27_faults):
        netlist, tests, table = setup
        observed = observe_fault(netlist, tests, s27_faults[4])
        log = truncate_log(observed, max_failures=2)
        ranked = rank_truncated(table, log, limit=5)
        top_scores = [score for _, score in ranked]
        own = score_truncated(table, 4, log)
        assert top_scores[0].consistent
        assert top_scores[0].matching_tests >= own.matching_tests


class TestResolutionLoss:
    def test_shorter_logs_grow_candidate_sets(self, setup, s27_faults):
        """Monotonicity: fewer observed failures, never fewer candidates."""
        netlist, tests, table = setup
        observed = observe_fault(netlist, tests, s27_faults[2])
        sizes = []
        for max_failures in (1, 2, 4, 10**6):
            log = truncate_log(observed, max_failures)
            sizes.append(len(exact_prefix_candidates(table, log)))
        assert sizes == sorted(sizes, reverse=True)
        assert 2 in set(
            exact_prefix_candidates(table, truncate_log(observed, 10**6))
        ) or sizes[-1] >= 1

    def test_complete_log_matches_full_dictionary(self, setup, s27_faults):
        from repro.dictionaries import FullDictionary

        netlist, tests, table = setup
        observed = observe_fault(netlist, tests, s27_faults[8])
        log = truncate_log(observed, 10**6)
        prefix = set(exact_prefix_candidates(table, log))
        full = set(FullDictionary(table).exact_candidates(observed))
        assert prefix == full
