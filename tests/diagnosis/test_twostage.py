"""Tests for two-stage (dictionary + dynamic) diagnosis."""

import pytest

from repro.diagnosis import (
    TwoStageDiagnoser,
    observe_fault,
    screening_cost_comparison,
)
from repro.diagnosis.engine import observe_defect
from repro.dictionaries import FullDictionary, PassFailDictionary
from tests.util import build_sd
from repro.sim import ResponseTable, TestSet


@pytest.fixture(scope="module")
def setup(s27_scan, s27_faults):
    tests = TestSet.random(s27_scan.inputs, 20, seed=33)
    table = ResponseTable.build(s27_scan, s27_faults, tests)
    samediff, _ = build_sd(table, calls=5, seed=0)
    return s27_scan, tests, table, samediff


class TestTwoStage:
    def test_modelled_fault_confirmed(self, setup, s27_faults):
        netlist, tests, table, samediff = setup
        stage = TwoStageDiagnoser(netlist, tests, samediff)
        for i in range(0, len(s27_faults), 6):
            observed = observe_fault(netlist, tests, s27_faults[i])
            diagnosis = stage.diagnose(observed)
            assert s27_faults[i] in diagnosis.screened
            assert s27_faults[i] in diagnosis.confirmed
            # Stage 2 simulated exactly the screened candidates.
            assert diagnosis.simulated == diagnosis.screen_size

    def test_confirmed_subset_of_screened(self, setup, s27_faults):
        netlist, tests, table, samediff = setup
        stage = TwoStageDiagnoser(netlist, tests, samediff)
        observed = observe_fault(netlist, tests, s27_faults[4])
        diagnosis = stage.diagnose(observed)
        assert set(diagnosis.confirmed) <= set(diagnosis.screened)

    def test_stage2_narrows_passfail_screen(self, setup, s27_faults):
        """Pass/fail screens coarsely; the dynamic stage must tighten it."""
        netlist, tests, table, _ = setup
        stage = TwoStageDiagnoser(netlist, tests, PassFailDictionary(table))
        narrowed = False
        for i in range(0, len(s27_faults), 4):
            observed = observe_fault(netlist, tests, s27_faults[i])
            diagnosis = stage.diagnose(observed)
            assert s27_faults[i] in diagnosis.confirmed
            narrowed |= len(diagnosis.confirmed) < len(diagnosis.screened)
        assert narrowed

    def test_non_modelled_defect_falls_back(self, setup, s27_faults):
        from repro.atpg import injected_copy

        netlist, tests, table, samediff = setup
        defective = injected_copy(
            injected_copy(netlist, s27_faults[1]), s27_faults[9]
        )
        observed = observe_defect(netlist, defective, tests)
        stage = TwoStageDiagnoser(netlist, tests, samediff)
        diagnosis = stage.diagnose(observed)
        # Either the screen matched something, or the ranked fallback kicked in.
        assert diagnosis.screened


class TestScreeningCosts:
    def test_resolution_reduces_dynamic_effort(self, setup, s27_faults):
        netlist, tests, table, samediff = setup
        dictionaries = [FullDictionary(table), PassFailDictionary(table), samediff]
        costs = screening_cost_comparison(netlist, tests, dictionaries, sample=15)
        # Higher first-stage resolution => fewer candidates to re-simulate.
        assert costs["full"] <= costs["same/different"] <= costs["pass/fail"]
        assert all(cost >= 1.0 for cost in costs.values())
