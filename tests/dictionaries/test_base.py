"""Tests for the dictionary size model and shared interface."""

import pytest

from repro.dictionaries import (
    DictionarySizes,
    FullDictionary,
    PassFailDictionary,
)
from repro.faults import collapse
from repro.sim import ResponseTable, TestSet


class TestSizes:
    def test_paper_formulae(self):
        sizes = DictionarySizes(n_faults=100, n_tests=20, n_outputs=7)
        assert sizes.full == 20 * 100 * 7
        assert sizes.pass_fail == 20 * 100
        assert sizes.same_different == 20 * (100 + 7)

    def test_sd_overhead_is_k_times_m(self):
        sizes = DictionarySizes(50, 10, 3)
        assert sizes.same_different - sizes.pass_fail == 10 * 3

    def test_of_table(self, c17, c17_faults):
        table = ResponseTable.build(c17, c17_faults, TestSet.exhaustive(c17.inputs))
        sizes = DictionarySizes.of(table)
        assert sizes.n_faults == len(c17_faults)
        assert sizes.n_tests == 32
        assert sizes.n_outputs == 2


@pytest.fixture(scope="module")
def table(c17, c17_faults):
    return ResponseTable.build(c17, c17_faults, TestSet.exhaustive(c17.inputs))


class TestSharedInterface:
    def test_size_matches_model(self, table):
        sizes = DictionarySizes.of(table)
        assert FullDictionary(table).size_bits == sizes.full
        assert PassFailDictionary(table).size_bits == sizes.pass_fail

    def test_distinguished_complement(self, table):
        from repro.dictionaries import total_pairs

        dictionary = PassFailDictionary(table)
        assert (
            dictionary.distinguished_pairs() + dictionary.indistinguished_pairs()
            == total_pairs(table.n_faults)
        )

    def test_row_partition_covers(self, table):
        partition = FullDictionary(table).row_partition()
        flat = sorted(i for members in partition for i in members)
        assert flat == list(range(table.n_faults))

    def test_encode_length_checked(self, table):
        for dictionary in (FullDictionary(table), PassFailDictionary(table)):
            with pytest.raises(ValueError):
                dictionary.encode_response([()])

    def test_exact_candidates_find_own_row(self, table):
        for dictionary in (FullDictionary(table), PassFailDictionary(table)):
            observed = [table.signature(3, j) for j in range(table.n_tests)]
            candidates = dictionary.exact_candidates(observed)
            assert 3 in candidates

    def test_ranked_candidates_sorted(self, table):
        dictionary = FullDictionary(table)
        observed = [table.signature(0, j) for j in range(table.n_tests)]
        ranked = dictionary.ranked_candidates(observed, limit=5)
        scores = [c.score for c in ranked]
        assert scores == sorted(scores, reverse=True)
        assert ranked[0].score == table.n_tests  # the fault itself matches fully
