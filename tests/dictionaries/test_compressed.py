"""Tests for the compressed comparator dictionary organisations."""

import itertools

import pytest

from repro.dictionaries import FullDictionary, PassFailDictionary
from repro.dictionaries.compressed import (
    CountDictionary,
    DropOnDetectDictionary,
    FirstFailDictionary,
)
from repro.sim import PASS, ResponseTable, TestSet


@pytest.fixture(scope="module")
def table(s27_scan, s27_faults):
    tests = TestSet.random(s27_scan.inputs, 20, seed=51)
    return ResponseTable.build(s27_scan, s27_faults, tests)


ALL = (CountDictionary, FirstFailDictionary, DropOnDetectDictionary)


class TestSharedContract:
    @pytest.mark.parametrize("cls", ALL)
    def test_indistinguished_matches_brute(self, cls, table):
        dictionary = cls(table)
        brute = sum(
            1
            for a, b in itertools.combinations(range(table.n_faults), 2)
            if dictionary.row(a) == dictionary.row(b)
        )
        assert dictionary.indistinguished_pairs() == brute

    @pytest.mark.parametrize("cls", ALL)
    def test_encode_of_own_row(self, cls, table):
        dictionary = cls(table)
        for i in range(0, table.n_faults, 5):
            observed = [table.signature(i, j) for j in range(table.n_tests)]
            assert dictionary.encode_response(observed) == dictionary.row(i)

    @pytest.mark.parametrize("cls", ALL)
    def test_length_validation(self, cls, table):
        with pytest.raises(ValueError):
            cls(table).encode_response([()])


class TestResolutionOrdering:
    def test_hierarchy(self, table):
        """pass/fail ⊑ count/first-fail ⊑ full; drop-on-detect is weakest."""
        full = FullDictionary(table).indistinguished_pairs()
        passfail = PassFailDictionary(table).indistinguished_pairs()
        count = CountDictionary(table).indistinguished_pairs()
        first = FirstFailDictionary(table).indistinguished_pairs()
        drop = DropOnDetectDictionary(table).indistinguished_pairs()
        assert full <= count <= passfail
        assert full <= first <= passfail
        assert drop >= passfail  # it throws away almost everything

    def test_count_refines_passfail(self, table):
        """count == 0 exactly on passing tests, so counts refine detection."""
        count = CountDictionary(table)
        passfail = PassFailDictionary(table)
        for a, b in itertools.combinations(range(table.n_faults), 2):
            if count.row(a) == count.row(b):
                assert passfail.row(a) == passfail.row(b)


class TestSizes:
    def test_count_and_firstfail_size(self, table):
        import math

        per_entry = max(1, math.ceil(math.log2(table.n_outputs + 1)))
        expected = table.n_tests * table.n_faults * per_entry
        assert CountDictionary(table).size_bits == expected
        assert FirstFailDictionary(table).size_bits == expected

    def test_drop_on_detect_smallest(self, table):
        drop = DropOnDetectDictionary(table)
        assert drop.size_bits < PassFailDictionary(table).size_bits

    def test_ordering(self, table):
        assert (
            DropOnDetectDictionary(table).size_bits
            < PassFailDictionary(table).size_bits
            < CountDictionary(table).size_bits
            <= FullDictionary(table).size_bits
        )


class TestDropOnDetect:
    def test_undetected_fault_row(self, s27_scan, s27_faults):
        # Build a table with an empty test set slice where some faults pass.
        tests = TestSet.random(s27_scan.inputs, 2, seed=52)
        table = ResponseTable.build(s27_scan, s27_faults, tests)
        drop = DropOnDetectDictionary(table)
        for i in range(table.n_faults):
            first, sig = drop.row(i)
            if table.detection_word(i) == 0:
                assert first == table.n_tests and sig == PASS
            else:
                assert table.signature(i, first) == sig
                assert all(
                    table.signature(i, j) == PASS for j in range(first)
                )

    def test_match_score_all_or_nothing(self, table):
        drop = DropOnDetectDictionary(table)
        observed = [table.signature(0, j) for j in range(table.n_tests)]
        assert drop.match_score(0, observed) == table.n_tests
