"""Tests for the multi-baseline and mixed-storage extensions."""

import pytest

from repro.dictionaries import MultiBaselineDictionary, add_secondary_baselines
from repro.sim import PASS, ResponseTable, TestSet
from tests.dictionaries.test_samediff import brute_indistinguished, random_table
from tests.util import build_sd


class TestMultiBaseline:
    def test_extra_baselines_never_hurt(self):
        for seed in range(4):
            table = random_table(20, 6, 3, seed=seed + 40)
            single, _ = build_sd(table, calls=2, seed=seed)
            multi = add_secondary_baselines(table, single, extra_per_test=1)
            assert multi.indistinguished_pairs() <= single.indistinguished_pairs()

    def test_size_accounting(self):
        table = random_table(10, 4, 2, seed=1)
        single, _ = build_sd(table, calls=1)
        multi = add_secondary_baselines(table, single, extra_per_test=1)
        n, m = table.n_faults, table.n_outputs
        expected = sum(len(per_test) * (n + m) for per_test in multi.baselines)
        assert multi.size_bits == expected
        assert multi.size_bits >= single.size_bits

    def test_rows_match_definition(self):
        table = random_table(10, 4, 2, seed=2)
        single, _ = build_sd(table, calls=1)
        multi = add_secondary_baselines(table, single, extra_per_test=1)
        for i in range(table.n_faults):
            row = multi.row(i)
            for j in range(table.n_tests):
                for position, baseline in enumerate(multi.baselines[j]):
                    expected = int(table.signature(i, j) != baseline)
                    assert row[j][position] == expected

    def test_indistinguished_count_exact(self):
        table = random_table(14, 5, 3, seed=3)
        single, _ = build_sd(table, calls=1)
        multi = add_secondary_baselines(table, single, extra_per_test=2)
        brute = sum(
            1
            for a in range(table.n_faults)
            for b in range(a + 1, table.n_faults)
            if multi.row(a) == multi.row(b)
        )
        assert multi.indistinguished_pairs() == brute

    def test_constructor_validates_length(self):
        table = random_table(5, 3, 2, seed=4)
        with pytest.raises(ValueError):
            MultiBaselineDictionary(table, ((PASS,),))


class TestMixedStorage:
    def test_saves_when_fault_free_baselines_exist(self, s27_scan, s27_faults):
        tests = TestSet.random(s27_scan.inputs, 16, seed=6)
        table = ResponseTable.build(s27_scan, s27_faults, tests)
        dictionary, _ = build_sd(table, calls=3, seed=0)
        fault_free = sum(1 for b in dictionary.baselines if b == PASS)
        saving = dictionary.size_bits - dictionary.mixed_size_bits()
        assert saving == fault_free * table.n_outputs - table.n_tests
