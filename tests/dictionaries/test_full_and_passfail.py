"""Tests for the full and pass/fail dictionaries."""

import itertools

import pytest

from repro.dictionaries import FullDictionary, PassFailDictionary
from repro.sim import PASS, ResponseTable, TestSet


@pytest.fixture(scope="module")
def table(s27_scan, s27_faults):
    tests = TestSet.random(s27_scan.inputs, 24, seed=4)
    return ResponseTable.build(s27_scan, s27_faults, tests)


class TestFullDictionary:
    def test_rows_are_signature_tuples(self, table):
        dictionary = FullDictionary(table)
        for i in range(table.n_faults):
            assert dictionary.row(i) == table.full_row(i)

    def test_highest_resolution(self, table):
        """No dictionary can beat the full dictionary on the same tests."""
        full = FullDictionary(table)
        passfail = PassFailDictionary(table)
        assert full.indistinguished_pairs() <= passfail.indistinguished_pairs()

    def test_indistinguished_matches_brute_force(self, table):
        dictionary = FullDictionary(table)
        brute = sum(
            1
            for a, b in itertools.combinations(range(table.n_faults), 2)
            if dictionary.row(a) == dictionary.row(b)
        )
        assert dictionary.indistinguished_pairs() == brute

    def test_match_score_counts_tests(self, table):
        dictionary = FullDictionary(table)
        observed = list(table.full_row(0))
        assert dictionary.match_score(0, observed) == table.n_tests
        # Perturb one test's response.
        observed[0] = (0, 1, 2) if observed[0] == PASS else PASS
        assert dictionary.match_score(0, observed) == table.n_tests - 1


class TestPassFailDictionary:
    def test_rows_are_detection_words(self, table):
        dictionary = PassFailDictionary(table)
        for i in range(table.n_faults):
            assert dictionary.row(i) == table.detection_word(i)

    def test_indistinguished_matches_brute_force(self, table):
        dictionary = PassFailDictionary(table)
        brute = sum(
            1
            for a, b in itertools.combinations(range(table.n_faults), 2)
            if dictionary.row(a) == dictionary.row(b)
        )
        assert dictionary.indistinguished_pairs() == brute

    def test_encode_response_drops_vector_detail(self, table):
        dictionary = PassFailDictionary(table)
        observed = [table.signature(2, j) for j in range(table.n_tests)]
        assert dictionary.encode_response(observed) == dictionary.row(2)

    def test_match_score_hamming(self, table):
        dictionary = PassFailDictionary(table)
        observed = [table.signature(1, j) for j in range(table.n_tests)]
        assert dictionary.match_score(1, observed) == table.n_tests

    def test_pass_fail_loses_information(self, table):
        """Faults detected by the same tests but with different output sets
        collapse in pass/fail, stay apart in full."""
        full = FullDictionary(table)
        passfail = PassFailDictionary(table)
        merged = passfail.indistinguished_pairs() - full.indistinguished_pairs()
        assert merged >= 0
