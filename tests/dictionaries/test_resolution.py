"""Tests for partition-refinement pair accounting."""

import itertools

from hypothesis import given
from hypothesis import strategies as st

from repro.dictionaries import (
    Partition,
    indistinguished_pairs,
    pairs_within,
    refine,
    total_pairs,
)


class TestCounting:
    def test_pairs_within(self):
        assert pairs_within(0) == 0
        assert pairs_within(1) == 0
        assert pairs_within(2) == 1
        assert pairs_within(5) == 10

    def test_total_pairs(self):
        assert total_pairs(4) == 6

    def test_indistinguished(self):
        assert indistinguished_pairs([[1, 2, 3], [4], [5, 6]]) == 4


class TestRefine:
    def test_refine_by_parity(self):
        partition = [[0, 1, 2, 3], [4, 5]]
        refined = refine(partition, key=lambda i: i % 2)
        assert sorted(map(sorted, refined)) == [[0, 2], [1, 3], [4], [5]]

    def test_partition_by_key_preserves_order(self):
        import pytest

        with pytest.warns(DeprecationWarning, match="repro.partition"):
            from repro.dictionaries.resolution import partition_by_key

        groups = partition_by_key([3, 1, 4, 1, 5], key=lambda i: i % 2)
        assert groups == [[3, 1, 1, 5], [4]]


class TestPartition:
    def test_initial_state(self):
        partition = Partition(range(5))
        assert partition.indistinguished() == 10
        assert partition.distinguished() == 0
        assert len(partition.nontrivial_classes()) == 1

    def test_split_returns_newly_distinguished(self):
        partition = Partition(range(4))
        gained = partition.split([0, 1])
        assert gained == 4  # {0,1} x {2,3}
        assert partition.indistinguished() == 2

    def test_split_noop_when_whole_class(self):
        partition = Partition(range(3))
        assert partition.split([0, 1, 2]) == 0
        assert partition.indistinguished() == 3

    def test_from_groups(self):
        partition = Partition.from_groups([[0, 1], [2]])
        assert partition.indistinguished() == 1
        assert partition.class_of[2] != partition.class_of[0]

    def test_copy_independent(self):
        partition = Partition(range(4))
        clone = partition.copy()
        clone.split([0])
        assert partition.indistinguished() == 6
        assert clone.indistinguished() == 3


@given(
    splits=st.lists(
        st.sets(st.integers(min_value=0, max_value=11), max_size=12),
        min_size=1,
        max_size=6,
    )
)
def test_partition_matches_brute_force(splits):
    """Property: split-based accounting equals explicit pair bookkeeping."""
    n = 12
    partition = Partition(range(n))
    rows = {i: [] for i in range(n)}  # explicit per-fault row of split bits
    for chosen in splits:
        partition.split(sorted(chosen))
        for i in range(n):
            rows[i].append(i in chosen)
    brute = sum(
        1 for a, b in itertools.combinations(range(n), 2) if rows[a] == rows[b]
    )
    assert partition.indistinguished() == brute


@given(
    splits=st.lists(
        st.sets(st.integers(min_value=0, max_value=9), max_size=10),
        min_size=1,
        max_size=5,
    )
)
def test_split_gain_sums_to_distinguished(splits):
    """Property: the sum of split() returns equals the distinguished total."""
    partition = Partition(range(10))
    gained = sum(partition.split(sorted(chosen)) for chosen in splits)
    assert gained == partition.distinguished()
