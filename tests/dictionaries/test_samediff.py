"""Tests for the same/different dictionary and Procedures 1/2."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import DictionaryConfig
from repro.dictionaries import (
    FullDictionary,
    PassFailDictionary,
    SameDifferentDictionary,
    replace_baselines,
    select_baselines,
    total_pairs,
)
from repro.experiments.example_tables import example_table
from repro.sim import PASS, ResponseTable, TestSet
from tests.util import build_sd, random_table


def brute_indistinguished(dictionary):
    n = dictionary.table.n_faults
    return sum(
        1
        for a, b in itertools.combinations(range(n), 2)
        if dictionary.row(a) == dictionary.row(b)
    )


class TestPaperExample:
    def test_procedure1_selects_paper_baselines(self):
        table = example_table()
        baselines, partition, distinguished = select_baselines(table)
        assert table.signature_to_vector(baselines[0], 0) == "01"
        assert table.signature_to_vector(baselines[1], 1) == "10"
        assert distinguished == 6  # all pairs
        assert partition.indistinguished() == 0

    def test_dictionary_distinguishes_everything(self):
        table = example_table()
        dictionary, report = build_sd(table, calls=3)
        assert dictionary.indistinguished_pairs() == 0
        assert report.distinguished_procedure1 == 6
        assert not report.procedure2_improved

    def test_sd_beats_passfail_at_similar_size(self):
        table = example_table()
        dictionary, _ = build_sd(table, calls=3)
        passfail = PassFailDictionary(table)
        assert dictionary.indistinguished_pairs() < passfail.indistinguished_pairs()
        assert dictionary.size_bits == passfail.size_bits + table.n_tests * 2


class TestDictionaryMechanics:
    def test_baseline_count_checked(self):
        table = example_table()
        with pytest.raises(ValueError):
            SameDifferentDictionary(table, [PASS])

    def test_all_pass_baselines_reduce_to_passfail(self, s27_scan, s27_faults):
        tests = TestSet.random(s27_scan.inputs, 12, seed=1)
        table = ResponseTable.build(s27_scan, s27_faults, tests)
        samediff = SameDifferentDictionary(table, [PASS] * table.n_tests)
        passfail = PassFailDictionary(table)
        for i in range(table.n_faults):
            assert samediff.row(i) == passfail.row(i)
        assert samediff.indistinguished_pairs() == passfail.indistinguished_pairs()

    def test_rows_match_definition(self):
        table = random_table(10, 6, 3, seed=2)
        baselines, _, _ = select_baselines(table)
        dictionary = SameDifferentDictionary(table, baselines)
        for i in range(table.n_faults):
            for j in range(table.n_tests):
                bit = (dictionary.row(i) >> j) & 1
                assert bit == int(table.signature(i, j) != baselines[j])

    def test_encode_response_roundtrip(self):
        table = random_table(8, 5, 2, seed=3)
        dictionary, _ = build_sd(table, calls=2)
        for i in range(table.n_faults):
            observed = [table.signature(i, j) for j in range(table.n_tests)]
            assert dictionary.encode_response(observed) == dictionary.row(i)

    def test_mixed_size_accounting(self):
        table = random_table(12, 8, 3, seed=4)
        dictionary, _ = build_sd(table, calls=2)
        stored = sum(1 for b in dictionary.baselines if b != PASS)
        expected = table.n_tests * (table.n_faults + 1) + stored * table.n_outputs
        assert dictionary.mixed_size_bits() == expected
        # When every baseline differs from fault-free, mixed adds the flag
        # bits but saves nothing; otherwise it must not exceed plain + k.
        assert dictionary.mixed_size_bits() <= dictionary.size_bits + table.n_tests


class TestProcedure1:
    def test_distinguished_count_is_exact(self):
        for seed in range(5):
            table = random_table(15, 8, 3, seed=seed)
            baselines, partition, distinguished = select_baselines(table)
            dictionary = SameDifferentDictionary(table, baselines)
            assert brute_indistinguished(dictionary) == partition.indistinguished()
            assert distinguished == total_pairs(15) - partition.indistinguished()

    def test_greedy_beats_fault_free_choice_per_table(self):
        for seed in range(5):
            table = random_table(15, 8, 3, seed=seed + 50)
            _, _, distinguished = select_baselines(table)
            passfail = PassFailDictionary(table)
            assert distinguished >= passfail.distinguished_pairs()

    def test_lower_infinite_scans_all_candidates(self):
        table = random_table(20, 6, 3, seed=9)
        _, _, with_cutoff = select_baselines(
            table, config=DictionaryConfig(lower=10**9)
        )
        _, _, default = select_baselines(table, config=DictionaryConfig(lower=10))
        # The exhaustive scan can only be at least as good per greedy step.
        assert with_cutoff >= 0 and default >= 0

    def test_order_changes_outcome_possible(self):
        table = random_table(25, 10, 3, seed=11)
        results = set()
        rng = random.Random(0)
        order = list(range(table.n_tests))
        for _ in range(6):
            rng.shuffle(order)
            _, _, distinguished = select_baselines(table, list(order))
            results.add(distinguished)
        assert len(results) >= 1  # typically >1; at minimum it must not crash

    def test_explicit_partition_reused(self):
        from repro.dictionaries import Partition

        table = random_table(10, 4, 2, seed=13)
        partition = Partition(range(table.n_faults))
        select_baselines(table, partition=partition)
        assert partition.indistinguished() <= total_pairs(10)


class TestRestartDriver:
    def test_more_calls_never_worse(self):
        table = random_table(20, 10, 3, seed=17)
        _, report1 = build_sd(table, calls=1, replace=False, seed=5)
        _, report2 = build_sd(table, calls=20, replace=False, seed=5)
        assert report2.distinguished_procedure1 >= report1.distinguished_procedure1

    def test_stops_at_full_ceiling(self, s27_scan, s27_faults):
        tests = TestSet.random(s27_scan.inputs, 30, seed=2)
        table = ResponseTable.build(s27_scan, s27_faults, tests)
        dictionary, report = build_sd(table, calls=100, seed=0)
        full = FullDictionary(table)
        if dictionary.indistinguished_pairs() == full.indistinguished_pairs():
            # Early stop must have kicked in well below the call budget.
            assert report.procedure1_calls < 100

    def test_deterministic(self):
        table = random_table(15, 8, 3, seed=23)
        a, ra = build_sd(table, calls=5, seed=3)
        b, rb = build_sd(table, calls=5, seed=3)
        assert a.baselines == b.baselines
        assert ra.distinguished_procedure2 == rb.distinguished_procedure2


class TestProcedure2:
    def test_never_decreases(self):
        for seed in range(5):
            table = random_table(15, 8, 3, seed=seed + 80)
            baselines, _, distinguished = select_baselines(table)
            improved, new_distinguished, _, _ = _run_replace(table, baselines)
            assert new_distinguished >= distinguished
            dictionary = SameDifferentDictionary(table, improved)
            assert (
                total_pairs(15) - brute_indistinguished(dictionary)
                == new_distinguished
            )

    def test_fixpoint_is_stable(self):
        table = random_table(12, 6, 3, seed=90)
        baselines, _, _ = select_baselines(table)
        first, count1, _, _ = _run_replace(table, baselines)
        second, count2, passes, replacements = _run_replace(table, first)
        assert count2 == count1
        assert replacements == 0
        assert passes == 1

    def test_finds_known_improvements(self):
        # Seeds where a single baseline swap provably beats the one-order
        # greedy result (verified by exhaustive swap enumeration).
        improved = 0
        for seed in (507, 511, 526):
            table = random_table(18, 8, 3, seed=seed)
            baselines, _, distinguished = select_baselines(table)
            _, new_distinguished, _, replacements = _run_replace(table, baselines)
            if replacements:
                assert new_distinguished > distinguished
                improved += 1
        assert improved >= 1

    def test_matches_exhaustive_single_swap(self):
        for seed in range(8):
            table = random_table(12, 5, 2, seed=seed + 900)
            baselines, _, distinguished = select_baselines(table)
            best = distinguished
            for j in range(table.n_tests):
                for z in table.candidate_signatures(j):
                    trial = list(baselines)
                    trial[j] = z
                    candidate = SameDifferentDictionary(table, trial)
                    best = max(
                        best, total_pairs(12) - brute_indistinguished(candidate)
                    )
            _, new_distinguished, _, _ = _run_replace(table, baselines)
            # Procedure 2 iterates swaps to a fixpoint, so it reaches at
            # least the best single swap.
            assert new_distinguished >= best


def _run_replace(table, baselines):
    return replace_baselines(table, baselines)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    n_faults=st.integers(min_value=2, max_value=12),
    n_tests=st.integers(min_value=1, max_value=6),
)
def test_property_counts_exact(seed, n_faults, n_tests):
    """Property: every reported count equals brute-force pair counting."""
    table = random_table(n_faults, n_tests, 2, seed=seed)
    dictionary, report = build_sd(table, calls=2, seed=seed)
    brute = brute_indistinguished(dictionary)
    assert report.indistinguished_procedure2 == brute
    assert report.distinguished_procedure2 == total_pairs(n_faults) - brute
