"""Tests for bit-packed dictionary serialization."""

import random

import pytest

from repro.dictionaries.storage import BitReader, BitWriter
from repro.dictionaries import (
    FullDictionary,
    PackedDictionary,
    PassFailDictionary,
    pack_full,
    pack_passfail,
    pack_samediff,
    unpack_full,
    unpack_passfail,
    unpack_samediff,
)
from repro.sim import ResponseTable, TestSet
from tests.util import build_sd


@pytest.fixture(scope="module")
def table(s27_scan, s27_faults):
    tests = TestSet.random(s27_scan.inputs, 14, seed=21)
    return ResponseTable.build(s27_scan, s27_faults, tests)


class _ListBitWriter:
    """The pre-refactor per-bit accumulator, kept as the reference."""

    def __init__(self):
        self._bits = []

    def write(self, value, width):
        for position in range(width):
            self._bits.append((value >> position) & 1)

    @property
    def bit_count(self):
        return len(self._bits)

    def to_bytes(self):
        out = bytearray((len(self._bits) + 7) // 8)
        for index, bit in enumerate(self._bits):
            if bit:
                out[index // 8] |= 1 << (index % 8)
        return bytes(out)


class TestBitWriter:
    """The bytearray accumulator must be byte-for-byte the old behaviour."""

    @pytest.mark.parametrize("seed", range(5))
    def test_equivalent_to_list_accumulator(self, seed):
        rng = random.Random(seed)
        fast, reference = BitWriter(), _ListBitWriter()
        for _ in range(300):
            width = rng.randint(0, 70)
            value = rng.getrandbits(width) if width else 0
            fast.write(value, width)
            reference.write(value, width)
            assert fast.bit_count == reference.bit_count
        assert fast.to_bytes() == reference.to_bytes()

    def test_masks_high_bits_like_old_writer(self):
        fast, reference = BitWriter(), _ListBitWriter()
        for writer in (fast, reference):
            writer.write(0b1111_0101, 3)  # only the low 3 bits land
            writer.write(-0, 0)
            writer.write((1 << 80) | 1, 5)
        assert fast.to_bytes() == reference.to_bytes()
        assert fast.bit_count == reference.bit_count == 8

    def test_to_bytes_is_stable_and_non_destructive(self):
        writer = BitWriter()
        writer.write(0b101, 3)
        first = writer.to_bytes()
        assert writer.to_bytes() == first
        writer.write(0b11, 2)
        assert writer.bit_count == 5
        assert writer.to_bytes() == bytes([0b11101])

    @pytest.mark.parametrize("seed", range(3))
    def test_reader_round_trip(self, seed):
        rng = random.Random(100 + seed)
        fields = [
            (rng.getrandbits(w) if (w := rng.randint(0, 70)) else 0, w)
            for _ in range(200)
        ]
        writer = BitWriter()
        for value, width in fields:
            writer.write(value, width)
        reader = BitReader(writer.to_bytes())
        for value, width in fields:
            assert reader.read(width) == value

    def test_reader_overrun_raises(self):
        reader = BitReader(b"\xff")
        reader.read(6)
        with pytest.raises(ValueError, match="exhausted"):
            reader.read(3)


class TestPayloadSizes:
    """The payload bit counts must equal the paper's size model exactly."""

    def test_passfail(self, table):
        packed = pack_passfail(PassFailDictionary(table))
        assert packed.payload_bits == table.n_tests * table.n_faults

    def test_samediff(self, table):
        dictionary, _ = build_sd(table, calls=3, seed=0)
        packed = pack_samediff(dictionary)
        assert packed.payload_bits == table.n_tests * (
            table.n_faults + table.n_outputs
        )

    def test_full(self, table):
        packed = pack_full(FullDictionary(table))
        assert packed.payload_bits == (
            table.n_tests * table.n_faults * table.n_outputs
        )

    def test_byte_length(self, table):
        packed = pack_passfail(PassFailDictionary(table))
        assert len(packed.payload) == (packed.payload_bits + 7) // 8


class TestRoundTrip:
    def test_passfail(self, table):
        original = PassFailDictionary(table)
        restored = unpack_passfail(pack_passfail(original), table)
        for i in range(table.n_faults):
            assert restored.row(i) == original.row(i)

    def test_samediff(self, table):
        original, _ = build_sd(table, calls=3, seed=0)
        restored = unpack_samediff(pack_samediff(original), table)
        assert restored.baselines == original.baselines
        for i in range(table.n_faults):
            assert restored.row(i) == original.row(i)

    def test_full(self, table):
        original = FullDictionary(table)
        restored = unpack_full(pack_full(original), table)
        assert restored.indistinguished_pairs() == original.indistinguished_pairs()

    def test_json_roundtrip(self, table):
        packed = pack_passfail(PassFailDictionary(table))
        again = PackedDictionary.from_json(packed.to_json())
        assert again == packed


class TestValidation:
    def test_kind_mismatch(self, table):
        packed = pack_passfail(PassFailDictionary(table))
        with pytest.raises(ValueError, match="same/different"):
            unpack_samediff(packed, table)
        with pytest.raises(ValueError, match="full"):
            unpack_full(packed, table)

    def test_corrupted_payload_detected(self, table):
        packed = pack_passfail(PassFailDictionary(table))
        corrupted = bytearray(packed.payload)
        corrupted[0] ^= 0xFF
        bad = PackedDictionary(
            packed.kind,
            packed.n_faults,
            packed.n_tests,
            packed.n_outputs,
            bytes(corrupted),
            packed.payload_bits,
        )
        with pytest.raises(ValueError, match="does not match"):
            unpack_passfail(bad, table)
