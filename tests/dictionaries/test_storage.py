"""Tests for bit-packed dictionary serialization."""

import pytest

from repro.dictionaries import (
    FullDictionary,
    PackedDictionary,
    PassFailDictionary,
    pack_full,
    pack_passfail,
    pack_samediff,
    unpack_full,
    unpack_passfail,
    unpack_samediff,
)
from repro.sim import ResponseTable, TestSet
from tests.util import build_sd


@pytest.fixture(scope="module")
def table(s27_scan, s27_faults):
    tests = TestSet.random(s27_scan.inputs, 14, seed=21)
    return ResponseTable.build(s27_scan, s27_faults, tests)


class TestPayloadSizes:
    """The payload bit counts must equal the paper's size model exactly."""

    def test_passfail(self, table):
        packed = pack_passfail(PassFailDictionary(table))
        assert packed.payload_bits == table.n_tests * table.n_faults

    def test_samediff(self, table):
        dictionary, _ = build_sd(table, calls=3, seed=0)
        packed = pack_samediff(dictionary)
        assert packed.payload_bits == table.n_tests * (
            table.n_faults + table.n_outputs
        )

    def test_full(self, table):
        packed = pack_full(FullDictionary(table))
        assert packed.payload_bits == (
            table.n_tests * table.n_faults * table.n_outputs
        )

    def test_byte_length(self, table):
        packed = pack_passfail(PassFailDictionary(table))
        assert len(packed.payload) == (packed.payload_bits + 7) // 8


class TestRoundTrip:
    def test_passfail(self, table):
        original = PassFailDictionary(table)
        restored = unpack_passfail(pack_passfail(original), table)
        for i in range(table.n_faults):
            assert restored.row(i) == original.row(i)

    def test_samediff(self, table):
        original, _ = build_sd(table, calls=3, seed=0)
        restored = unpack_samediff(pack_samediff(original), table)
        assert restored.baselines == original.baselines
        for i in range(table.n_faults):
            assert restored.row(i) == original.row(i)

    def test_full(self, table):
        original = FullDictionary(table)
        restored = unpack_full(pack_full(original), table)
        assert restored.indistinguished_pairs() == original.indistinguished_pairs()

    def test_json_roundtrip(self, table):
        packed = pack_passfail(PassFailDictionary(table))
        again = PackedDictionary.from_json(packed.to_json())
        assert again == packed


class TestValidation:
    def test_kind_mismatch(self, table):
        packed = pack_passfail(PassFailDictionary(table))
        with pytest.raises(ValueError, match="same/different"):
            unpack_samediff(packed, table)
        with pytest.raises(ValueError, match="full"):
            unpack_full(packed, table)

    def test_corrupted_payload_detected(self, table):
        packed = pack_passfail(PassFailDictionary(table))
        corrupted = bytearray(packed.payload)
        corrupted[0] ^= 0xFF
        bad = PackedDictionary(
            packed.kind,
            packed.n_faults,
            packed.n_tests,
            packed.n_outputs,
            bytes(corrupted),
            packed.payload_bits,
        )
        with pytest.raises(ValueError, match="does not match"):
            unpack_passfail(bad, table)
