"""Tests for dictionary test selection."""

import pytest

from repro.dictionaries import FullDictionary, PassFailDictionary
from repro.dictionaries.testselect import (
    select_tests_preserving_detection,
    select_tests_preserving_resolution,
)
from repro.sim import ResponseTable, TestSet
from tests.dictionaries.test_samediff import random_table


@pytest.fixture(scope="module")
def table(s27_scan, s27_faults):
    # Deliberately redundant test set: plenty to prune.
    tests = TestSet.random(s27_scan.inputs, 40, seed=17)
    return ResponseTable.build(s27_scan, s27_faults, tests)


class TestDetectionSelection:
    def test_detection_preserved(self, table):
        chosen = select_tests_preserving_detection(table)
        sub = table.subset(chosen)
        for i in range(table.n_faults):
            assert (table.detection_word(i) != 0) == (sub.detection_word(i) != 0)

    def test_strictly_smaller_on_redundant_set(self, table):
        chosen = select_tests_preserving_detection(table)
        assert len(chosen) < table.n_tests

    def test_sorted_and_unique(self, table):
        chosen = select_tests_preserving_detection(table)
        assert chosen == sorted(set(chosen))

    def test_empty_table(self):
        table = random_table(3, 4, 2, seed=1)
        chosen = select_tests_preserving_detection(table)
        sub = table.subset(chosen)
        for i in range(table.n_faults):
            assert (table.detection_word(i) != 0) == (sub.detection_word(i) != 0)


class TestResolutionSelection:
    def test_full_resolution_preserved(self, table):
        chosen = select_tests_preserving_resolution(table)
        sub = table.subset(chosen)
        assert (
            FullDictionary(sub).indistinguished_pairs()
            == FullDictionary(table).indistinguished_pairs()
        )

    def test_detection_preserved_too(self, table):
        chosen = select_tests_preserving_resolution(table)
        sub = table.subset(chosen)
        for i in range(table.n_faults):
            assert (table.detection_word(i) != 0) == (sub.detection_word(i) != 0)

    def test_prunes_redundant_tests(self, table):
        chosen = select_tests_preserving_resolution(table)
        assert len(chosen) < table.n_tests

    def test_needs_at_least_detection_count(self, table):
        resolution = select_tests_preserving_resolution(table)
        detection = select_tests_preserving_detection(table)
        # Resolution is the stronger property: never cheaper than detection.
        assert len(resolution) >= len(detection) - 1  # greedy slack of one

    def test_random_tables(self):
        for seed in range(5):
            table = random_table(12, 10, 3, seed=seed + 70)
            chosen = select_tests_preserving_resolution(table)
            sub = table.subset(chosen)
            assert (
                FullDictionary(sub).indistinguished_pairs()
                == FullDictionary(table).indistinguished_pairs()
            )

    def test_dictionary_size_shrinks_proportionally(self, table):
        chosen = select_tests_preserving_resolution(table)
        sub = table.subset(chosen)
        full = PassFailDictionary(table)
        small = PassFailDictionary(sub)
        assert small.size_bits == full.size_bits * len(chosen) // table.n_tests
