"""docs/cli.md must match the argparse tree it is generated from."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def load_tool(name):
    spec = importlib.util.spec_from_file_location(
        name, REPO_ROOT / "tools" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_cli_docs_are_not_stale():
    gen = load_tool("gen_cli_docs")
    rendered = gen.render()
    on_disk = (REPO_ROOT / "docs" / "cli.md").read_text()
    assert rendered == on_disk, (
        "docs/cli.md is stale; regenerate with `python tools/gen_cli_docs.py`"
    )


def test_every_subcommand_is_documented():
    from repro.cli import build_parser

    gen = load_tool("gen_cli_docs")
    doc = (REPO_ROOT / "docs" / "cli.md").read_text()
    names = [name for name, _, _ in gen.iter_subcommands(build_parser())]
    assert "serve" in names  # the batch service must be part of the tree
    for name in names:
        assert f"## `repro-fd {name}`" in doc, f"{name} missing from docs/cli.md"


def test_serve_flags_are_documented():
    doc = (REPO_ROOT / "docs" / "cli.md").read_text()
    for flag in ("--deadline-ms", "--pool-size", "--max-retries",
                 "--workers", "--limit"):
        assert flag in doc


def test_check_mode_detects_drift(tmp_path, capsys, monkeypatch):
    gen = load_tool("gen_cli_docs")
    doc = tmp_path / "cli.md"
    monkeypatch.setattr(gen, "DOC_PATH", doc)
    assert gen.main([]) == 0  # writes the page
    assert gen.main(["--check"]) == 0
    doc.write_text(doc.read_text() + "drifted\n")
    assert gen.main(["--check"]) == 1
