"""Every relative link and anchor in docs/ and README.md must resolve."""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_links", REPO_ROOT / "tools" / "check_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_all_relative_links_resolve():
    checker = load_checker()
    problems = []
    for page in checker.checked_pages():
        checker.check_page(page, problems)
    assert not problems, "\n".join(problems)


def test_docs_index_links_every_page():
    index = (REPO_ROOT / "docs" / "index.md").read_text()
    for page in sorted((REPO_ROOT / "docs").glob("*.md")):
        if page.name == "index.md":
            continue
        assert f"({page.name})" in index, (
            f"docs/index.md does not link {page.name}"
        )


def test_github_slugger_basics():
    checker = load_checker()
    assert checker.github_slug("Pool sizing") == "pool-sizing"
    assert checker.github_slug("`repro-fd serve`") == "repro-fd-serve"
    assert checker.github_slug("Deadlines and retries") == "deadlines-and-retries"
