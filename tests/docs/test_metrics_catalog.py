"""Every serve- and diagnosis-layer metric must be documented in
docs/observability.md.

Two independent enumerations feed each check: the declared catalog
(``repro.serve.metrics.catalog()`` / ``repro.diagnosis.metrics.
catalog()``), and a literal scan of the sources for ``"serve.…"`` /
``"diagnosis.…"`` / ``"fleet.…"`` strings — so neither an undeclared
inline metric nor an undocumented declared one can slip through.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.diagnosis import metrics as diagnosis_metrics
from repro.serve import metrics
from repro.serve.outcomes import REASON_CODES

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
DOC = (REPO_ROOT / "docs" / "observability.md").read_text()

SERVE_NAME = re.compile(r'"(serve\.[a-z0-9_.]+)"')
DIAGNOSIS_NAME = re.compile(r'"((?:diagnosis|fleet)\.[a-z0-9_.]+)"')

#: Trace-span names (not metrics); checked against the span taxonomy.
SPANS = {"serve.batch"}
DIAGNOSIS_SPANS = {"diagnosis.lookup", "diagnosis.multiplets"}


def declared_names():
    catalog = metrics.catalog()
    return sorted(
        name for names in catalog.values() for name in names
    )


def literal_names():
    names = set()
    # rglob: the daemon subpackage (src/repro/serve/daemon/) emits too.
    for source in sorted((REPO_ROOT / "src" / "repro" / "serve").rglob("*.py")):
        for match in SERVE_NAME.finditer(source.read_text()):
            name = match.group(1)
            if name == metrics.OUTCOME_PREFIX.rstrip("."):
                continue  # the prefix itself; expanded per reason code below
            names.add(name)
    # Expand the outcome prefix the way the server does at runtime.
    names.discard(metrics.OUTCOME_PREFIX)
    for code in REASON_CODES:
        names.add(metrics.outcome_counter(code))
    return sorted(names)


def test_declared_catalog_covers_the_literals():
    declared = set(declared_names())
    for name in literal_names():
        if name.startswith(metrics.OUTCOME_PREFIX) or name in SPANS:
            continue  # reason codes are expanded; spans are not metrics
        assert name in declared, (
            f"{name} is emitted by src/repro/serve but not declared in "
            f"repro.serve.metrics.catalog()"
        )


def test_every_serve_metric_is_documented():
    for name in declared_names():
        assert f"`{name}`" in DOC, (
            f"{name} is missing from the serve-metrics table in "
            f"docs/observability.md"
        )


def test_serve_spans_are_in_the_taxonomy():
    for span in SPANS:
        assert span in DOC, (
            f"span {span} is missing from the span taxonomy in "
            f"docs/observability.md"
        )


def diagnosis_declared_names():
    catalog = diagnosis_metrics.catalog()
    return sorted(name for names in catalog.values() for name in names)


def diagnosis_literal_names():
    names = set()
    sources = sorted(
        (REPO_ROOT / "src" / "repro" / "diagnosis").rglob("*.py")
    ) + [REPO_ROOT / "src" / "repro" / "experiments" / "fleet.py"]
    for source in sources:
        for match in DIAGNOSIS_NAME.finditer(source.read_text()):
            names.add(match.group(1))
    return sorted(names)


def test_diagnosis_catalog_covers_the_literals():
    declared = set(diagnosis_declared_names())
    for name in diagnosis_literal_names():
        if name in DIAGNOSIS_SPANS:
            continue
        assert name in declared, (
            f"{name} is emitted by the diagnosis/fleet sources but not "
            f"declared in repro.diagnosis.metrics.catalog()"
        )


def test_every_diagnosis_metric_is_documented():
    for name in diagnosis_declared_names():
        assert f"`{name}`" in DOC, (
            f"{name} is missing from the diagnosis/fleet metrics table in "
            f"docs/observability.md"
        )


def test_diagnosis_spans_are_in_the_taxonomy():
    for span in DIAGNOSIS_SPANS:
        assert span in DOC, (
            f"span {span} is missing from the span taxonomy in "
            f"docs/observability.md"
        )


def test_timer_summary_statistics_are_documented():
    """Every statistic ``Timer.summary()`` reports — including the tail
    percentiles p90/p99 — must be listed in the metric catalog, since
    that summary is what ``--metrics-out`` and the ``BENCH_*.json``
    metrics block actually contain."""
    from repro.obs import MetricsRegistry

    timer = MetricsRegistry().timer("t")
    timer.record(1.0)
    for statistic in timer.summary():
        assert f"`{statistic}`" in DOC, (
            f"Timer.summary() reports {statistic!r} but the timers line in "
            f"docs/observability.md does not list it"
        )
    for percentile in ("p50", "p90", "p95", "p99"):
        assert percentile in timer.summary()


def test_every_reason_code_is_documented():
    serving = (REPO_ROOT / "docs" / "serving.md").read_text()
    for code in REASON_CODES:
        assert f"`{code}`" in serving, (
            f"reason code {code} is missing from docs/serving.md"
        )
        assert f"`serve.outcomes.{code}`" in DOC
