"""Tests for the ablation studies."""

import pytest

from repro.experiments import (
    calls_sweep,
    lower_sweep,
    mixed_storage_study,
    multi_baseline_study,
)


class TestLowerSweep:
    def test_sweep_runs(self):
        points = lower_sweep("p208", "diag", lowers=(1, 10, 10**9))
        assert [p.lower for p in points] == [1, 10, 10**9]
        assert all(p.distinguished > 0 for p in points)
        assert all(p.seconds >= 0 for p in points)

    def test_cutoff_loses_little(self):
        """The paper's observation: LOWER=10 nearly matches the full scan."""
        points = {p.lower: p.distinguished for p in lower_sweep(
            "p208", "diag", lowers=(10, 10**9)
        )}
        assert points[10] >= 0.98 * points[10**9]


class TestCallsSweep:
    def test_monotone_in_restart_budget(self):
        points = calls_sweep("p208", "diag", calls_values=(1, 5, 20))
        values = [p.distinguished_procedure1 for p in points]
        assert values == sorted(values)
        assert points[-1].procedure1_calls >= points[0].procedure1_calls


class TestMultiBaseline:
    def test_resolution_improves_with_baselines(self):
        points = multi_baseline_study("p208", "diag", max_extra=1, calls=5)
        assert points[0].baselines_per_test == 1
        assert points[1].baselines_per_test == 2
        assert points[1].indistinguished <= points[0].indistinguished
        assert points[1].size_bits > points[0].size_bits


class TestMixedStorage:
    def test_accounting(self):
        result = mixed_storage_study("p208", "diag", calls=5)
        assert result.plain_size_bits > 0
        assert 0 <= result.fault_free_baselines <= result.n_tests
        # Mixed never costs more than plain plus the per-test flag bits.
        assert result.mixed_size_bits <= result.plain_size_bits + result.n_tests
