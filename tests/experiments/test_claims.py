"""The paper's qualitative claims, asserted on deterministic experiments.

These are the conclusions Section 4 draws from Table 6; the reproduction
must show the same shape (who wins, and where the gap is largest).
"""

import pytest

from repro.experiments import table6_row


@pytest.fixture(scope="module")
def rows():
    circuits = ("p208", "p298")
    return {
        (circuit, ttype): table6_row(circuit, ttype, calls=20)
        for circuit in circuits
        for ttype in ("diag", "10det")
    }


class TestClaimSdBeatsPassFail:
    """"In all the cases considered, a same/different fault dictionary can
    distinguish more fault pairs than a pass/fail fault dictionary of a
    similar size."""

    def test_sd_at_least_as_good(self, rows):
        for row in rows.values():
            assert row.indist_sd_replace <= row.indist_passfail

    def test_sd_strictly_better_somewhere(self, rows):
        assert any(
            row.indist_sd_replace < row.indist_passfail for row in rows.values()
        )

    def test_size_overhead_is_small(self, rows):
        """s/d size exceeds p/f by k*m — a few percent when m << n."""
        for row in rows.values():
            overhead = row.sizes.same_different / row.sizes.pass_fail - 1.0
            assert overhead == pytest.approx(row.n_outputs / row.n_faults)
            assert overhead < 0.25


class TestClaimTenDetectCloseTheGap:
    """"When a 10-detection test set is used, the same/different fault
    dictionary sometimes distinguishes all the fault pairs distinguished by
    a full dictionary."""

    def test_sd_reaches_full_on_10det_somewhere(self, rows):
        reached = [
            row.indist_sd_replace == row.indist_full
            for (circuit, ttype), row in rows.items()
            if ttype == "10det"
        ]
        assert any(reached)

    def test_gap_smaller_with_10det(self, rows):
        """The s/d advantage over p/f grows with the larger test set."""
        for circuit in ("p208", "p298"):
            diag = rows[(circuit, "diag")]
            ndet = rows[(circuit, "10det")]
            gap_diag = diag.indist_passfail - diag.indist_sd_replace
            gap_ndet = ndet.indist_passfail - ndet.indist_sd_replace
            assert gap_ndet >= gap_diag


class TestClaimTestSetSizes:
    """"The 10-detection test set is typically larger than a diagnostic
    test set.  Nevertheless, the same/different dictionary based on the
    10-detection test set is smaller than the full dictionary based on the
    diagnostic test set."""

    def test_10det_larger(self, rows):
        for circuit in ("p208", "p298"):
            assert rows[(circuit, "10det")].n_tests > rows[(circuit, "diag")].n_tests

    def test_sd_10det_smaller_than_full_diag(self, rows):
        # "typically": must hold outright for p298 (m << n); p208's single
        # true output makes its full dictionary unusually small, so allow
        # near-parity there.
        for circuit, slack in (("p208", 1.05), ("p298", 1.0)):
            sd_ndet = rows[(circuit, "10det")].sizes.same_different
            full_diag = rows[(circuit, "diag")].sizes.full
            assert sd_ndet < full_diag * slack


class TestClaimFullVsPassFailByTestType:
    """"The diagnostic test set leaves a smaller number of indistinguished
    fault pairs when a full dictionary is used" (diag sets target pairs the
    full dictionary can see; p/f benefits from sheer test count)."""

    def test_full_ordering(self, rows):
        for circuit in ("p208", "p298"):
            diag = rows[(circuit, "diag")]
            ndet = rows[(circuit, "10det")]
            # Normalised by pair count, diag's full dictionary resolution is
            # at least as good as 10det's.
            from repro.dictionaries import total_pairs

            diag_rate = diag.indist_full / total_pairs(diag.n_faults)
            ndet_rate = ndet.indist_full / total_pairs(ndet.n_faults)
            assert diag_rate <= ndet_rate * 1.05  # allow small slack
