"""The worked example must reproduce the paper's Tables 1-5 exactly."""

from repro.dictionaries import (
    DictionarySizes,
    FullDictionary,
    PassFailDictionary,
    Partition,
)
from repro.experiments.example_tables import (
    EXAMPLE_RESPONSES,
    example_table,
    paper_baselines,
    render_all,
    render_table1,
    render_table2,
    render_table3,
    selection_trace,
)


class TestTable1:
    def test_full_dictionary_distinguishes_all(self):
        table = example_table()
        assert FullDictionary(table).indistinguished_pairs() == 0

    def test_responses_as_published(self):
        table = example_table()
        for i in range(4):
            for j in range(2):
                assert (
                    table.response_vector(i, j) == EXAMPLE_RESPONSES[f"f{i}"][j]
                )
        assert table.good_vector(0) == "00"
        assert table.good_vector(1) == "11"


class TestTable2:
    def test_passfail_misses_only_f2_f3(self):
        table = example_table()
        dictionary = PassFailDictionary(table)
        assert dictionary.indistinguished_pairs() == 1
        assert dictionary.row(2) == dictionary.row(3)
        assert dictionary.row(0) != dictionary.row(1)

    def test_paper_text_f0_f1_distinguished_by_t0(self):
        table = example_table()
        dictionary = PassFailDictionary(table)
        assert (dictionary.row(0) & 1) != (dictionary.row(1) & 1)


class TestTable3:
    def test_baselines_are_01_and_10(self):
        dictionary = paper_baselines()
        assert dictionary.baseline_vector(0) == "01"
        assert dictionary.baseline_vector(1) == "10"

    def test_all_pairs_distinguished(self):
        dictionary = paper_baselines()
        assert dictionary.indistinguished_pairs() == 0

    def test_f0_f1_and_f2_f3_distinguished_by_t1(self):
        dictionary = paper_baselines()
        bit = lambda i, j: (dictionary.row(i) >> j) & 1
        assert bit(0, 1) != bit(1, 1)
        assert bit(2, 1) != bit(3, 1)


class TestTables4And5:
    def test_table4_distances(self):
        table = example_table()
        partition = Partition(range(4))
        trace = dict(selection_trace(0, partition))
        assert trace == {"00": 3, "10": 3, "01": 4}

    def test_table5_distances(self):
        table = example_table()
        partition = Partition(range(4))
        # Apply the t0 selection first (split {f2, f3} from {f0, f1}).
        partition.split([2, 3])
        trace = dict(selection_trace(1, partition))
        assert trace == {"11": 1, "10": 2, "01": 1}


class TestSizes:
    def test_paper_size_comparison(self):
        sizes = DictionarySizes.of(example_table())
        assert sizes.full == 16
        assert sizes.pass_fail == 8
        assert sizes.same_different == 12


class TestRendering:
    def test_tables_render(self):
        assert "bl  01  10" in render_table3()
        assert "ff  00  11" in render_table1()
        assert "f3   1   1" in render_table2()

    def test_render_all_contains_every_table(self):
        text = render_all()
        for title in (
            "Table 1",
            "Table 2",
            "Table 3",
            "Table 4",
            "Table 5",
            "Section 2",
        ):
            assert title in text
