"""Fleet campaign driver: determinism, unit synthesis, grid claims."""

import pytest

from repro.diagnosis.multiplet import envelope
from repro.experiments.fleet import (
    FleetConfig,
    drive_unit,
    mode_baselines,
    run_campaign,
    synthesize_unit,
    synthetic_table,
)
from repro.dictionaries import FullDictionary
from repro.obs import scoped_registry
from repro.sim.responses import PASS

import random

QUICK = FleetConfig(
    n_faults=40, n_tests=24, n_outputs=4, units=30, seed=0
)


class TestSynthesis:
    def test_table_is_deterministic(self):
        a = synthetic_table(QUICK)
        b = synthetic_table(QUICK)
        for i in range(a.n_faults):
            assert a.full_row(i) == b.full_row(i)

    def test_signature_pool_bounds_distinct_values(self):
        table = synthetic_table(QUICK)
        for j in range(table.n_tests):
            distinct = {
                table.signature(i, j)
                for i in range(table.n_faults)
            } - {PASS}
            assert len(distinct) <= QUICK.signature_pool

    def test_clean_single_unit_is_its_own_row(self):
        table = synthetic_table(QUICK)
        rng = random.Random(1)
        members, observed = synthesize_unit(table, QUICK, rng)
        assert len(members) == 1
        assert tuple(observed) == table.full_row(members[0])

    def test_double_unit_stays_inside_the_envelope(self):
        config = FleetConfig(
            n_faults=40, n_tests=24, n_outputs=4, units=30,
            double_fraction=1.0, seed=0,
        )
        table = synthetic_table(config)
        rng = random.Random(2)
        members, observed = synthesize_unit(table, config, rng)
        assert len(members) == 2
        for j, signature in enumerate(observed):
            assert envelope(table, members, j).admits(tuple(signature))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(units=0)
        with pytest.raises(ValueError):
            FleetConfig(noise=1.5)
        with pytest.raises(ValueError):
            FleetConfig(double_fraction=-0.1)
        with pytest.raises(ValueError):
            FleetConfig(flip_budget=-1)


class TestModeBaselines:
    def test_baseline_is_the_modal_faulty_signature(self):
        table = synthetic_table(QUICK)
        baselines = mode_baselines(table)
        for j, baseline in enumerate(baselines):
            counts = {}
            for i in range(table.n_faults):
                signature = table.signature(i, j)
                if signature != PASS:
                    counts[signature] = counts.get(signature, 0) + 1
            if counts:
                assert counts[baseline] == max(counts.values())
            else:
                assert baseline == PASS


class TestDriveUnit:
    def test_clean_unit_resolves_to_its_class(self):
        table = synthetic_table(QUICK)
        dictionary = FullDictionary(table)
        observed = list(table.full_row(5))
        with scoped_registry():
            result = drive_unit(
                dictionary, observed, (5,),
                strategy="greedy", flip_budget=0,
                test_budget=table.n_tests, resolve_at=1,
            )
        assert result.hit
        assert result.tests_used <= table.n_tests
        assert result.curve[-1] == result.final_candidates


class TestCampaign:
    def test_report_is_deterministic(self):
        with scoped_registry():
            a = run_campaign(QUICK, kinds=("full",), strategies=("greedy",))
            b = run_campaign(QUICK, kinds=("full",), strategies=("greedy",))
        assert a.as_dict() == b.as_dict()

    def test_grid_ordering_full_beats_passfail(self):
        with scoped_registry():
            report = run_campaign(QUICK, strategies=("greedy",))
        pf = report.cell("pass-fail", "greedy")
        sd = report.cell("same-different", "greedy")
        full = report.cell("full", "greedy")
        assert (
            full.mean_tests_to_resolution
            <= sd.mean_tests_to_resolution
            <= pf.mean_tests_to_resolution
        )
        assert full.hit_rate == 1.0

    def test_unknown_cells_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(QUICK, kinds=("bogus",))
        with pytest.raises(ValueError):
            run_campaign(QUICK, strategies=("oracle",))
        with scoped_registry():
            report = run_campaign(
                QUICK, kinds=("full",), strategies=("greedy",)
            )
        with pytest.raises(KeyError):
            report.cell("pass-fail", "greedy")

    def test_fleet_metrics_emitted(self):
        with scoped_registry() as registry:
            run_campaign(QUICK, kinds=("full",), strategies=("greedy",))
            assert registry.counters["fleet.units"].value == QUICK.units
            assert registry.counters["fleet.observations"].value > 0
            assert "fleet.cell_seconds" in registry.timers
