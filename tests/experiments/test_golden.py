"""Golden regression for Table-6-style results on bundled small circuits.

The committed fixture pins dictionary sizes, indistinguished-pair counts
and the logical restart count for three (circuit, test-type) cells at
``seed=0, calls=5``.  Any drift — an accidental change to ATPG, fault
simulation, signature grouping, the seed streams, the restart fold or
Procedures 1/2 — fails here with a field-level diff.

Regenerate deliberately after an *intended* behavior change::

    PYTHONPATH=src python tests/experiments/test_golden.py --regen
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

GOLDEN_PATH = Path(__file__).parent / "golden" / "table6_small.json"

#: (circuit, test type) cells pinned by the fixture; small enough for
#: tier-1, spread over both test-set generators.
CELLS = (("p208", "diag"), ("p208", "10det"), ("p298", "diag"))
SEED = 0
CALLS = 5


def compute_rows(backend=None):
    from repro.experiments import table6_row

    rows = []
    for circuit, test_type in CELLS:
        row = table6_row(circuit, test_type, seed=SEED, calls=CALLS, backend=backend)
        rows.append(
            {
                "circuit": circuit,
                "test_type": test_type,
                "n_tests": row.n_tests,
                "n_faults": row.n_faults,
                "n_outputs": row.n_outputs,
                "size_full": row.sizes.full,
                "size_passfail": row.sizes.pass_fail,
                "size_samediff": row.sizes.same_different,
                "indist_full": row.indist_full,
                "indist_passfail": row.indist_passfail,
                "indist_sd_random": row.indist_sd_random,
                "indist_sd_replace": row.indist_sd_replace,
                "procedure1_calls": row.build.procedure1_calls,
            }
        )
    return {"seed": SEED, "calls": CALLS, "rows": rows}


def _assert_matches_golden(backend):
    golden = json.loads(GOLDEN_PATH.read_text())
    current = compute_rows(backend)
    assert current["seed"] == golden["seed"]
    assert current["calls"] == golden["calls"]
    for got, want in zip(current["rows"], golden["rows"]):
        mismatched = {
            key: (got[key], want[key])
            for key in want
            if got[key] != want[key]
        }
        assert not mismatched, (
            f"{want['circuit']}/{want['test_type']} drifted "
            f"(got, golden): {mismatched} — if intended, regenerate with "
            f"`PYTHONPATH=src python {__file__} --regen`"
        )
    assert len(current["rows"]) == len(golden["rows"])


@pytest.mark.parametrize("backend", ["packed", "naive", "vector"])
def test_table6_matches_golden(backend):
    """Every kernel backend must reproduce the fixture bit for bit."""
    _assert_matches_golden(backend)


def test_table6_matches_golden_vector_fallback():
    """The vector backend's no-numpy path, pinned against the fixture.

    Numpy imports are blocked while the fallback backend is registered
    and constructed, so this leg runs the pure-Python word-array sweep
    exactly as a numpy-less interpreter would.
    """
    from tests.util import fallback_vector_registered, numpy_import_blocked

    with fallback_vector_registered():
        with numpy_import_blocked():
            from repro.kernels import get_backend

            assert not get_backend("vector").uses_numpy
            _assert_matches_golden("vector")


if __name__ == "__main__":
    if "--regen" not in sys.argv:
        sys.exit(f"usage: {sys.argv[0]} --regen")
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(compute_rows(), indent=2) + "\n")
    print(f"wrote {GOLDEN_PATH}")
