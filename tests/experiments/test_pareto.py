"""Tests for the size/resolution landscape experiment."""

import pytest

from repro.experiments.pareto import (
    ParetoPoint,
    dominated_points,
    render_frontier,
    size_resolution_frontier,
)


@pytest.fixture(scope="module")
def frontier():
    return size_resolution_frontier("p208", "diag", calls=5)


class TestFrontier:
    def test_all_organisations_present(self, frontier):
        kinds = {p.kind for p in frontier}
        assert kinds == {
            "drop-on-detect",
            "pass/fail",
            "same/different",
            "count",
            "first-fail",
            "full",
        }

    def test_sorted_by_size(self, frontier):
        sizes = [p.size_bits for p in frontier]
        assert sizes == sorted(sizes)

    def test_paper_headline_holds(self, frontier):
        """same/different: barely bigger than pass/fail, strictly better."""
        by_kind = {p.kind: p for p in frontier}
        sd = by_kind["same/different"]
        pf = by_kind["pass/fail"]
        full = by_kind["full"]
        assert sd.size_bits < pf.size_bits * 1.1
        assert sd.indistinguished <= pf.indistinguished
        assert sd.indistinguished >= full.indistinguished

    def test_same_different_not_dominated(self, frontier):
        """The paper's point: s/d is on the Pareto frontier."""
        assert ParetoPoint(
            "same/different",
            next(p.size_bits for p in frontier if p.kind == "same/different"),
            next(p.indistinguished for p in frontier if p.kind == "same/different"),
        ) not in dominated_points(frontier)

    def test_full_has_best_resolution(self, frontier):
        best = min(p.indistinguished for p in frontier)
        by_kind = {p.kind: p for p in frontier}
        assert by_kind["full"].indistinguished == best


class TestDominance:
    def test_dominated_points_logic(self):
        points = [
            ParetoPoint("a", 10, 5),
            ParetoPoint("b", 20, 5),   # bigger, same resolution: dominated
            ParetoPoint("c", 5, 10),
            ParetoPoint("d", 30, 1),
        ]
        dominated = dominated_points(points)
        assert ParetoPoint("b", 20, 5) in dominated
        assert ParetoPoint("a", 10, 5) not in dominated
        assert ParetoPoint("d", 30, 1) not in dominated


def test_render(frontier):
    text = render_frontier("p208", frontier)
    assert "same/different" in text
    assert "p208" in text
