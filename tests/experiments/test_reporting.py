"""Tests for text-table rendering."""

from repro.experiments.reporting import format_table


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(("name", "value"), [("alpha", 1), ("b", 22)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert lines[1].startswith("-")
        # Numeric column right-aligned: both rows end at the same column.
        assert lines[2].rstrip().endswith("1")
        assert lines[3].rstrip().endswith("22")
        assert len(lines[2]) <= len(lines[3]) + 1

    def test_none_renders_dash(self):
        text = format_table(("a",), [(None,)])
        assert text.splitlines()[-1].strip() == "-"

    def test_title(self):
        text = format_table(("a",), [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(("x",), [(0.123456,)])
        assert "0.123" in text
        assert "0.1234" not in text

    def test_wide_cells_stretch_columns(self):
        text = format_table(("h",), [("a-very-long-cell",)])
        header, rule, row = text.splitlines()
        assert len(rule) == len("a-very-long-cell")

    def test_negative_numbers_right_aligned(self):
        text = format_table(("v",), [(-5,), (100,)])
        lines = text.splitlines()
        assert lines[-2].endswith("-5")
        assert lines[-1].endswith("100")

    def test_empty_rows(self):
        text = format_table(("a", "b"), [])
        assert len(text.splitlines()) == 2


class TestScalingStudy:
    def test_runs_on_small_circuits(self):
        from repro.experiments.scaling import scaling_study

        points = scaling_study(circuits=("p208",), tests_per_circuit=32)
        assert len(points) == 1
        point = points[0]
        assert point.faults > 0
        assert point.build_table_seconds >= 0
        assert point.procedure1_seconds >= 0
