"""Tests for the Table 6 harness (structure + invariants, small budget)."""

import pytest

from repro.experiments import render_table6, table6_row
from repro.experiments.table6 import prepared_experiment, response_table_for


@pytest.fixture(scope="module")
def diag_row():
    return table6_row("p208", "diag", calls=5)


@pytest.fixture(scope="module")
def ndet_row():
    return table6_row("p208", "10det", calls=5)


class TestRowInvariants:
    def test_size_relationships(self, diag_row):
        sizes = diag_row.sizes
        assert sizes.pass_fail < sizes.same_different < sizes.full
        assert sizes.same_different - sizes.pass_fail == (
            diag_row.n_tests * diag_row.n_outputs
        )

    def test_resolution_ordering(self, diag_row, ndet_row):
        for row in (diag_row, ndet_row):
            assert row.indist_full <= row.indist_sd_replace
            assert row.indist_sd_replace <= row.indist_sd_random
            assert row.indist_sd_random <= row.indist_passfail

    def test_ndet_has_more_tests(self, diag_row, ndet_row):
        assert ndet_row.n_tests > diag_row.n_tests

    def test_replace_column_omitted_without_improvement(self, diag_row):
        if diag_row.indist_sd_replace == diag_row.indist_sd_random:
            assert diag_row.sd_replace_or_none is None
        else:
            assert diag_row.sd_replace_or_none == diag_row.indist_sd_replace

    def test_fault_counts_positive(self, diag_row):
        assert diag_row.n_faults > 100
        assert diag_row.n_outputs == 9  # 1 PO + 8 scan cells


class TestHarnessPlumbing:
    def test_unknown_test_type(self):
        with pytest.raises(ValueError, match="unknown test type"):
            prepared_experiment("p208", "nope")

    def test_prepared_experiment_cached(self):
        first = prepared_experiment("p208", "diag")
        second = prepared_experiment("p208", "diag")
        assert first is second

    def test_response_table_uses_detected_faults_only(self):
        netlist, table = response_table_for("p208", "diag")
        for i in range(table.n_faults):
            assert table.detection_word(i) != 0

    def test_render(self, diag_row, ndet_row):
        text = render_table6([diag_row, ndet_row])
        assert "p208" in text
        assert "diag" in text and "10det" in text
        assert "ind s/d rand" in text
        # Two data rows plus title, header and rule.
        assert len(text.splitlines()) == 5
