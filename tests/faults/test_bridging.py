"""Tests for the bridging fault model."""

import pytest

from repro.circuit import GateType, from_gates
from repro.faults.bridging import (
    BridgingFault,
    enumerate_bridges,
    inject_bridge,
    is_feedback_bridge,
)
from repro.sim import TestSet, output_vectors, simulate


def plain_netlist():
    return from_gates(
        "br",
        inputs=["a", "b", "c"],
        gates=[
            ("x", GateType.AND, ["a", "b"]),
            ("y", GateType.OR, ["b", "c"]),
            ("o1", GateType.XOR, ["x", "y"]),
            ("o2", GateType.NAND, ["x", "c"]),
        ],
        outputs=["o1", "o2"],
    )


class TestModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            BridgingFault("a", "a")
        with pytest.raises(ValueError):
            BridgingFault("a", "b", wired="XOR")

    def test_str(self):
        assert str(BridgingFault("x", "y", "OR")) == "bridge(x,y)/OR"

    def test_feedback_detection(self):
        netlist = plain_netlist()
        assert is_feedback_bridge(netlist, BridgingFault("x", "o1"))
        assert not is_feedback_bridge(netlist, BridgingFault("x", "y"))


class TestInjection:
    def test_wired_and_semantics(self):
        """Exhaustive: both bridged nets carry AND(driver_a, driver_b)."""
        netlist = plain_netlist()
        bridged = inject_bridge(netlist, BridgingFault("x", "y", "AND"))
        tests = TestSet.exhaustive(netlist.inputs)
        words = simulate(bridged, tests)
        expected = words["x__drv"] & words["y__drv"]
        assert words["x"] == expected
        assert words["y"] == expected

    def test_wired_or_semantics(self):
        netlist = plain_netlist()
        bridged = inject_bridge(netlist, BridgingFault("x", "y", "OR"))
        tests = TestSet.exhaustive(netlist.inputs)
        words = simulate(bridged, tests)
        expected = words["x__drv"] | words["y__drv"]
        assert words["x"] == expected
        assert words["y"] == expected

    def test_driver_values_unchanged(self):
        netlist = plain_netlist()
        bridged = inject_bridge(netlist, BridgingFault("x", "y", "AND"))
        tests = TestSet.exhaustive(netlist.inputs)
        good = simulate(netlist, tests)
        bad = simulate(bridged, tests)
        assert bad["x__drv"] == good["x"]
        assert bad["y__drv"] == good["y"]

    def test_interface_preserved_for_logic_bridges(self):
        netlist = plain_netlist()
        bridged = inject_bridge(netlist, BridgingFault("x", "y", "AND"))
        assert bridged.inputs == netlist.inputs
        assert bridged.outputs == netlist.outputs

    def test_pi_bridge(self):
        """Bridging a PI redirects its consumers but keeps the interface."""
        netlist = plain_netlist()
        bridged = inject_bridge(netlist, BridgingFault("a", "y", "OR"))
        assert bridged.inputs == netlist.inputs
        tests = TestSet.exhaustive(netlist.inputs)
        words = simulate(bridged, tests)
        assert words["a__bridged"] == words["a"] | words["y__drv"]
        # x now reads the bridged value of a.
        assert words["x"] == words["a__bridged"] & words["b"]

    def test_feedback_rejected(self):
        with pytest.raises(ValueError, match="feedback"):
            inject_bridge(plain_netlist(), BridgingFault("x", "o2"))

    def test_unknown_net_rejected(self):
        with pytest.raises(ValueError, match="unknown net"):
            inject_bridge(plain_netlist(), BridgingFault("x", "nope"))

    def test_bridge_changes_behaviour(self, c17):
        bridged = inject_bridge(c17, BridgingFault("10", "19", "AND"))
        tests = TestSet.exhaustive(c17.inputs)
        assert output_vectors(bridged, tests) != output_vectors(c17, tests)


class TestEnumeration:
    def test_sampled_bridges_valid(self, c17):
        bridges = enumerate_bridges(c17, count=10, seed=1)
        assert len(bridges) == 10
        for fault in bridges:
            assert not is_feedback_bridge(c17, fault)
            inject_bridge(c17, fault).validate()

    def test_wired_filter(self, c17):
        bridges = enumerate_bridges(c17, count=5, seed=2, wired="OR")
        assert all(f.wired == "OR" for f in bridges)

    def test_deterministic(self, c17):
        assert enumerate_bridges(c17, 5, seed=3) == enumerate_bridges(c17, 5, seed=3)
