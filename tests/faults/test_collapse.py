"""Tests for structural equivalence collapsing.

The behavioural check is the important one: any two faults placed in the
same equivalence class must have identical detection words under an
exhaustive test set (that is the definition of fault equivalence).
"""

import pytest

from repro.circuit import GateType, from_gates, full_scan, generate_netlist
from repro.faults import all_faults, collapse, equivalence_classes
from repro.sim import FaultSimulator, TestSet
from tests.conftest import tiny_spec


class TestC17:
    def test_collapsed_count(self, c17):
        # The well-known result for c17 with input-branch faults: 22 classes.
        assert len(collapse(c17)) == 22

    def test_classes_cover_universe(self, c17):
        classes = equivalence_classes(c17)
        members = [fault for group in classes.values() for fault in group]
        assert sorted(members) == sorted(all_faults(c17))

    def test_representative_is_smallest_member(self, c17):
        for representative, members in equivalence_classes(c17).items():
            assert representative == min(members)

    def test_nand_rule(self, c17):
        # Input sa0 of a NAND is equivalent to its output sa1.
        classes = equivalence_classes(c17)
        for representative, members in classes.items():
            lines = {(f.line, f.stuck_at, f.input_of) for f in members}
            if ("10", 1, None) in lines:  # 10 = NAND(1, 3)
                assert ("1", 0, None) in lines  # single-fanout input 1


def _behavioural_check(netlist, classes):
    simulator = FaultSimulator(netlist, TestSet.exhaustive(netlist.inputs))
    for members in classes.values():
        words = {simulator.detection_word(fault) for fault in members}
        assert len(words) == 1, f"class {sorted(map(str, members))} not equivalent"


class TestBehaviouralEquivalence:
    def test_c17(self, c17):
        _behavioural_check(c17, equivalence_classes(c17))

    def test_s27_scan(self, s27_scan):
        _behavioural_check(s27_scan, equivalence_classes(s27_scan))

    @pytest.mark.parametrize("seed", range(3))
    def test_small_random_circuits(self, seed):
        netlist = generate_netlist(tiny_spec(seed + 100, gates=20))
        scanned, _ = full_scan(netlist)
        _behavioural_check(scanned, equivalence_classes(scanned))


class TestEdgeCases:
    def test_not_chain_collapses(self):
        netlist = from_gates(
            "chain",
            inputs=["a"],
            gates=[("b", GateType.NOT, ["a"]), ("c", GateType.NOT, ["b"])],
            outputs=["c"],
        )
        # a/sa0 == b/sa1 == c/sa0 and a/sa1 == b/sa0 == c/sa1: 2 classes.
        assert len(collapse(netlist)) == 2

    def test_explicit_fault_subset(self, c17):
        from repro.faults import Fault

        subset = [Fault("1", 0), Fault("10", 1), Fault("1", 1)]
        classes = equivalence_classes(c17, subset)
        # 1/sa0 and 10/sa1 merge (NAND rule); 1/sa1 stays alone.
        assert len(classes) == 2

    def test_collapse_deterministic(self, s27_scan):
        assert collapse(s27_scan) == collapse(s27_scan)
