"""Tests for dominance fault collapsing.

Behavioural ground truth: for every dropped fault there must exist a
retained fault whose detecting-test set is a non-empty subset of the
dropped fault's — so any test set covering the retained list covers the
full list.
"""

import pytest

from repro.circuit import GateType, from_gates, full_scan, generate_netlist
from repro.faults import collapse
from repro.faults.dominance import dominance_collapse
from repro.sim import FaultSimulator, TestSet
from tests.conftest import tiny_spec


def _verify_dominance(netlist):
    retained = dominance_collapse(netlist)
    full = collapse(netlist)
    dropped = [f for f in full if f not in set(retained)]
    simulator = FaultSimulator(netlist, TestSet.exhaustive(netlist.inputs))
    retained_words = [
        simulator.detection_word(f) for f in retained
    ]
    for fault in dropped:
        word = simulator.detection_word(fault)
        if word == 0:
            continue  # undetectable fault: nothing to cover
        covered = any(
            rw != 0 and (rw & ~word) == 0 for rw in retained_words
        )
        assert covered, f"dropped fault {fault} not dominated behaviourally"
    return full, retained, dropped


class TestBehavioural:
    def test_c17(self, c17):
        full, retained, dropped = _verify_dominance(c17)
        assert dropped, "c17 must allow some dominance drops"
        assert len(retained) < len(full)

    def test_s27(self, s27_scan):
        _verify_dominance(s27_scan)

    @pytest.mark.parametrize("seed", range(3))
    def test_random_circuits(self, seed):
        netlist, _ = full_scan(generate_netlist(tiny_spec(seed + 600, gates=22)))
        _verify_dominance(netlist)


class TestCoveragePreserved:
    def test_complete_test_for_retained_covers_all(self, c17):
        from repro.atpg import generate_detection_tests

        retained = dominance_collapse(c17)
        tests, report = generate_detection_tests(c17, retained, seed=0)
        assert report.coverage == 1.0
        simulator = FaultSimulator(c17, tests)
        assert simulator.coverage(collapse(c17)) == 1.0


class TestStructure:
    def test_subset_of_equivalence_collapse(self, c17):
        assert set(dominance_collapse(c17)) <= set(collapse(c17))

    def test_chain_collapse(self):
        netlist = from_gates(
            "chain",
            inputs=["a", "b", "c"],
            gates=[
                ("g1", GateType.AND, ["a", "b"]),
                ("g2", GateType.AND, ["g1", "c"]),
            ],
            outputs=["g2"],
        )
        retained = set(dominance_collapse(netlist))
        # g1/sa1 is dominated by... wait: g1/sa1 dominates a/sa1 -> g1/sa1
        # dropped in favour of deeper input faults.
        from repro.faults import Fault

        assert Fault("a", 1) in retained
        assert Fault("g1", 1) not in retained

    def test_observable_output_fault_kept(self):
        netlist = from_gates(
            "obs",
            inputs=["a", "b"],
            gates=[("g", GateType.AND, ["a", "b"])],
            outputs=["g"],
        )
        retained = set(dominance_collapse(netlist))
        from repro.faults import Fault

        # g is a PO: its sa1 stays even though a/sa1 would justify dropping.
        assert Fault("g", 1) in retained

    def test_deterministic(self, s27_scan):
        assert dominance_collapse(s27_scan) == dominance_collapse(s27_scan)
