"""Tests for the Fault value type."""

import pytest

from repro.faults import Fault


class TestFault:
    def test_validation(self):
        with pytest.raises(ValueError):
            Fault("n1", 2)

    def test_stem_vs_pin(self):
        stem = Fault("n1", 0)
        pin = Fault("n1", 0, input_of="g3")
        assert stem.is_stem
        assert not pin.is_stem
        assert stem != pin

    def test_str(self):
        assert str(Fault("n1", 1)) == "n1/sa1"
        assert str(Fault("n1", 0, input_of="g3")) == "n1->g3/sa0"

    def test_hashable_and_equal(self):
        assert Fault("a", 0) == Fault("a", 0)
        assert len({Fault("a", 0), Fault("a", 0), Fault("a", 1)}) == 2

    def test_ordering_total_and_deterministic(self):
        faults = [
            Fault("b", 1),
            Fault("a", 0, input_of="z"),
            Fault("a", 1),
            Fault("a", 0),
        ]
        ordered = sorted(faults)
        assert ordered[0] == Fault("a", 0)
        # Stem faults sort before pin faults on the same line/value.
        assert ordered.index(Fault("a", 0)) < ordered.index(Fault("a", 0, input_of="z"))
        assert sorted(faults) == sorted(reversed(faults))

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Fault("a", 0).stuck_at = 1
