"""Tests for fault universe enumeration."""

from repro.circuit import GateType, Netlist, from_gates
from repro.faults import Fault, all_faults, checkpoint_faults


class TestAllFaults:
    def test_c17_universe_size(self, c17):
        # c17: 11 nets, two of which (3 and 11, 16) have fan-out 2, plus
        # branch faults.  Classic count: 22 stem + 12 branch = 34.
        faults = all_faults(c17)
        assert len(faults) == 34
        assert len(set(faults)) == 34

    def test_single_fanout_nets_have_no_pin_faults(self, c17):
        faults = all_faults(c17)
        fanout = c17.fanout_map()
        for fault in faults:
            if not fault.is_stem:
                assert len(fanout[fault.line]) > 1

    def test_both_polarities_everywhere(self, c17):
        faults = set(all_faults(c17))
        for fault in list(faults):
            flipped = Fault(fault.line, 1 - fault.stuck_at, fault.input_of)
            assert flipped in faults

    def test_constants_carry_no_faults(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_gate("k", GateType.CONST0, [])
        netlist.add_gate("y", GateType.OR, ["a", "k"])
        netlist.add_output("y")
        lines = {f.line for f in all_faults(netlist)}
        assert "k" not in lines


class TestCheckpointFaults:
    def test_checkpoints_subset_of_universe(self, c17):
        universe = set(all_faults(c17))
        checkpoints = checkpoint_faults(c17)
        assert set(checkpoints) <= universe

    def test_c17_checkpoints(self, c17):
        # Checkpoints: PIs with single fan-out + all fan-out branches.
        checkpoints = checkpoint_faults(c17)
        branch_lines = {(f.line, f.input_of) for f in checkpoints if not f.is_stem}
        assert ("3", "10") in branch_lines
        assert ("3", "11") in branch_lines

    def test_fanout_pi_contributes_branches_not_stem(self):
        netlist = from_gates(
            "fan",
            inputs=["a"],
            gates=[
                ("x", GateType.NOT, ["a"]),
                ("y", GateType.BUF, ["a"]),
                ("z", GateType.AND, ["x", "y"]),
            ],
            outputs=["z"],
        )
        checkpoints = checkpoint_faults(netlist)
        stems = [f for f in checkpoints if f.is_stem and f.line == "a"]
        branches = [f for f in checkpoints if not f.is_stem and f.line == "a"]
        assert not stems
        assert len(branches) == 4  # 2 branches x 2 polarities
