"""Tests for the transition fault model and two-pattern ATPG.

Ground truth: exhaustive enumeration of all (launch, capture) pairs on
c17 (32 x 32 = 1024 pairs, simulated bit-parallel).
"""

import pytest

from repro.atpg import Status
from repro.atpg.transition_atpg import TransitionAtpg, generate_transition_tests
from repro.faults.transition import (
    TransitionFault,
    TransitionFaultSimulator,
    transition_faults,
    transition_response_table,
)
from repro.sim import TestSet


@pytest.fixture(scope="module")
def c17_all_pairs(c17):
    """All 1024 two-pattern tests for c17 as paired TestSets."""
    launch = TestSet(c17.inputs)
    capture = TestSet(c17.inputs)
    for v1 in range(32):
        for v2 in range(32):
            launch.append(v1)
            capture.append(v2)
    return launch, capture


class TestModel:
    def test_fault_list(self, c17):
        faults = transition_faults(c17)
        assert len(faults) == 2 * len(c17.gates)
        assert TransitionFault("10", rising=True) in faults

    def test_residual_stuck_at(self):
        assert TransitionFault("n", True).residual_stuck_at.stuck_at == 0
        assert TransitionFault("n", False).residual_stuck_at.stuck_at == 1

    def test_str(self):
        assert str(TransitionFault("n", True)) == "n/str"
        assert str(TransitionFault("n", False)) == "n/stf"

    def test_ordering(self, c17):
        faults = transition_faults(c17)
        assert sorted(faults) == sorted(faults, key=lambda f: f.sort_key)


class TestSimulator:
    def test_launch_semantics(self, c17, c17_all_pairs):
        launch, capture = c17_all_pairs
        simulator = TransitionFaultSimulator(c17, launch, capture)
        fault = TransitionFault("10", rising=True)
        word = simulator.launch_word(fault)
        from repro.sim import simulate

        v1 = simulate(c17, launch)["10"]
        v2 = simulate(c17, capture)["10"]
        for j in range(len(launch)):
            expected = (not (v1 >> j) & 1) and ((v2 >> j) & 1)
            assert bool((word >> j) & 1) == bool(expected)

    def test_detection_needs_launch_and_capture(self, c17, c17_all_pairs):
        """Detected pairs are exactly launch-word AND stuck-at detection."""
        from repro.sim import FaultSimulator

        launch, capture = c17_all_pairs
        simulator = TransitionFaultSimulator(c17, launch, capture)
        stuck_sim = FaultSimulator(c17, capture)
        for fault in transition_faults(c17):
            expected = simulator.launch_word(fault) & stuck_sim.detection_word(
                fault.residual_stuck_at
            )
            assert simulator.detection_word(fault) == expected

    def test_pairing_validated(self, c17):
        with pytest.raises(ValueError, match="pair up"):
            TransitionFaultSimulator(
                c17,
                TestSet.random(c17.inputs, 3, seed=0),
                TestSet.random(c17.inputs, 4, seed=0),
            )


class TestAtpg:
    def test_against_exhaustive(self, c17, c17_all_pairs):
        launch, capture = c17_all_pairs
        exhaustive = TransitionFaultSimulator(c17, launch, capture)
        engine = TransitionAtpg(c17)
        for fault in transition_faults(c17):
            truth = exhaustive.detection_word(fault) != 0
            result = engine.generate(fault)
            assert result.status is not Status.ABORTED
            assert result.detected == truth, str(fault)
            if result.detected:
                pair_launch = TestSet(c17.inputs)
                pair_launch.append_assignment(result.launch)
                pair_capture = TestSet(c17.inputs)
                pair_capture.append_assignment(result.capture)
                check = TransitionFaultSimulator(c17, pair_launch, pair_capture)
                assert check.detection_word(fault) == 1, str(fault)

    def test_driver_classifies_everything(self, s27_scan):
        faults = transition_faults(s27_scan)
        launch, capture, report = generate_transition_tests(
            s27_scan, faults, seed=1, random_pairs=32
        )
        assert len(launch) == len(capture)
        assert not report["aborted"]
        total = len(report["detected"]) + len(report["untestable"])
        assert total == len(faults)
        simulator = TransitionFaultSimulator(s27_scan, launch, capture)
        for fault in report["detected"]:
            assert simulator.detection_word(fault), str(fault)


class TestTransitionDictionaries:
    def test_same_different_applies(self, s27_scan):
        """The s/d construction is fault-model agnostic."""
        from repro.dictionaries import FullDictionary, PassFailDictionary
        from tests.util import build_sd

        faults = transition_faults(s27_scan)
        launch, capture, report = generate_transition_tests(
            s27_scan, faults, seed=2, random_pairs=32
        )
        detected = report["detected"]
        table = transition_response_table(s27_scan, launch, capture, detected)
        full = FullDictionary(table)
        passfail = PassFailDictionary(table)
        samediff, _ = build_sd(table, calls=10, seed=0)
        assert (
            full.indistinguished_pairs()
            <= samediff.indistinguished_pairs()
            <= passfail.indistinguished_pairs()
        )
