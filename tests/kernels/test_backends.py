"""Tests for the kernel backend registry and selection rules."""

import pytest

from repro.kernels import (
    BACKEND_ENV,
    DEFAULT_BACKEND,
    KernelBackend,
    NaiveBackend,
    PackedBackend,
    VectorBackend,
    available_backends,
    backend_choices_help,
    backend_descriptions,
    default_backend_name,
    get_backend,
    register_backend,
)
from repro.kernels.base import _DESCRIPTIONS, _INSTANCES, _REGISTRY


class TestRegistry:
    def test_all_builtin_backends_registered(self):
        assert available_backends() == ["naive", "packed", "vector"]

    def test_get_backend_by_name(self):
        assert isinstance(get_backend("naive"), NaiveBackend)
        assert isinstance(get_backend("packed"), PackedBackend)
        assert isinstance(get_backend("vector"), VectorBackend)

    def test_instances_are_cached(self):
        assert get_backend("packed") is get_backend("packed")
        assert get_backend("vector") is get_backend("vector")

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="naive"):
            get_backend("vectorised-fpga")

    def test_backends_satisfy_protocol(self):
        for name in available_backends():
            assert isinstance(get_backend(name), KernelBackend)

    def test_register_backend_replaces_stale_instance(self):
        class Custom(NaiveBackend):
            name = "custom"

        try:
            register_backend("custom", Custom)
            first = get_backend("custom")
            register_backend("custom", Custom)
            assert get_backend("custom") is not first
        finally:
            _REGISTRY.pop("custom", None)
            _INSTANCES.pop("custom", None)
            _DESCRIPTIONS.pop("custom", None)


class TestDefaultSelection:
    def test_packed_is_the_default(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert default_backend_name() == "packed"
        assert get_backend().name == "packed"

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "naive")
        assert default_backend_name() == "naive"
        assert get_backend().name == "naive"
        assert get_backend(None).name == "naive"

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "naive")
        assert get_backend("packed").name == "packed"

    def test_env_selects_vector(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "vector")
        assert get_backend().name == "vector"


class TestHelpTextDrift:
    """The CLI ``--backend`` surface is generated from the registry —
    a registered backend can never be missing from the help string."""

    def test_every_registered_backend_is_in_the_help(self):
        help_text = backend_choices_help()
        for name, description in backend_descriptions().items():
            assert f"'{name}'" in help_text
            if description:
                assert description in help_text
        assert BACKEND_ENV in help_text
        assert f"'{DEFAULT_BACKEND}'" in help_text

    def test_cli_flag_choices_and_help_come_from_the_registry(self):
        from repro.cli import build_parser

        actions = self._backend_actions(build_parser())
        assert actions, "no subcommand exposes --backend?"
        for action in actions:
            assert list(action.choices) == available_backends()
            assert action.help == backend_choices_help()

    def test_newly_registered_backend_shows_up_everywhere(self):
        from repro.cli import build_parser

        class Custom(NaiveBackend):
            name = "zz-custom"

        try:
            register_backend("zz-custom", Custom, "a drift-test backend")
            assert "zz-custom" in available_backends()
            help_text = backend_choices_help()
            assert "'zz-custom' (a drift-test backend)" in help_text
            # A parser built after registration reflects it, choices & help.
            parser = build_parser()
            for action in self._backend_actions(parser):
                assert "zz-custom" in action.choices
                assert "a drift-test backend" in action.help
        finally:
            _REGISTRY.pop("zz-custom", None)
            _INSTANCES.pop("zz-custom", None)
            _DESCRIPTIONS.pop("zz-custom", None)

    @staticmethod
    def _backend_actions(parser):
        actions = []
        for action in parser._subparsers._group_actions[0].choices.values():
            for sub in action._actions:
                if "--backend" in getattr(sub, "option_strings", ()):
                    actions.append(sub)
        return actions


class TestVectorConstruction:
    def test_registry_instance_uses_numpy_when_available(self):
        backend = get_backend("vector")
        try:
            import numpy  # noqa: F401

            assert backend.uses_numpy
        except ImportError:
            assert not backend.uses_numpy

    def test_force_fallback_flag(self):
        assert not VectorBackend(force_fallback=True).uses_numpy

    def test_force_fallback_env(self, monkeypatch):
        from repro.kernels.vector import FORCE_FALLBACK_ENV

        monkeypatch.setenv(FORCE_FALLBACK_ENV, "1")
        assert not VectorBackend().uses_numpy
