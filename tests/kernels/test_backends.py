"""Tests for the kernel backend registry and selection rules."""

import pytest

from repro.kernels import (
    BACKEND_ENV,
    KernelBackend,
    NaiveBackend,
    PackedBackend,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
)
from repro.kernels.base import _INSTANCES, _REGISTRY


class TestRegistry:
    def test_both_builtin_backends_registered(self):
        assert available_backends() == ["naive", "packed"]

    def test_get_backend_by_name(self):
        assert isinstance(get_backend("naive"), NaiveBackend)
        assert isinstance(get_backend("packed"), PackedBackend)

    def test_instances_are_cached(self):
        assert get_backend("packed") is get_backend("packed")

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="naive"):
            get_backend("vectorised-fpga")

    def test_backends_satisfy_protocol(self):
        for name in available_backends():
            assert isinstance(get_backend(name), KernelBackend)

    def test_register_backend_replaces_stale_instance(self):
        class Custom(NaiveBackend):
            name = "custom"

        try:
            register_backend("custom", Custom)
            first = get_backend("custom")
            register_backend("custom", Custom)
            assert get_backend("custom") is not first
        finally:
            _REGISTRY.pop("custom", None)
            _INSTANCES.pop("custom", None)


class TestDefaultSelection:
    def test_packed_is_the_default(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert default_backend_name() == "packed"
        assert get_backend().name == "packed"

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "naive")
        assert default_backend_name() == "naive"
        assert get_backend().name == "naive"
        assert get_backend(None).name == "naive"

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "naive")
        assert get_backend("packed").name == "packed"
