"""Differential property tests: every backend vs the naive reference.

Every public kernel primitive must be *byte-identical* across backends —
not statistically close, not equal-up-to-tie-breaks.  Hypothesis hunts
for a response table where any primitive (candidate scoring, the full
Procedure 1 run, pair counting, Procedure 2) disagrees between ``naive``
and any of: ``packed``, ``vector`` (numpy path), or ``vector`` forced
onto its pure-Python ``array`` fallback.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import DictionaryConfig, build
from repro.partition import Partition
from repro.kernels import VectorBackend, get_backend
from repro.obs import scoped_registry
from repro.sim import PASS
from tests.util import distinct_table, fallback_vector_registered, random_table

NAIVE = get_backend("naive")
PACKED = get_backend("packed")
VECTOR = get_backend("vector")
VECTOR_FALLBACK = VectorBackend(force_fallback=True)

#: Every backend that must match the reference, differential-test order.
OTHERS = (PACKED, VECTOR, VECTOR_FALLBACK)


def _backend_id(backend):
    if backend is VECTOR_FALLBACK:
        return "vector-fallback"
    return backend.name


@st.composite
def tables(draw, min_faults=0, max_faults=14, min_tests=0, max_tests=7):
    n_faults = draw(st.integers(min_value=min_faults, max_value=max_faults))
    n_tests = draw(st.integers(min_value=min_tests, max_value=max_tests))
    n_outputs = draw(st.integers(min_value=1, max_value=3))
    density = draw(st.sampled_from([0.0, 0.2, 0.5, 0.8, 1.0]))
    seed = draw(st.integers(min_value=0, max_value=10**6))
    return random_table(n_faults, n_tests, n_outputs, seed, density=density)


def _run_tuple(run):
    return (run.baselines, run.distinguished, run.evaluated, run.cutoffs,
            run.winners)


@settings(max_examples=40, deadline=None)
@given(table=tables(), lower=st.sampled_from([1, 2, 10, 10**9]))
def test_procedure1_identical(table, lower):
    """Same baselines, counts, evaluation totals, cutoffs and winners."""
    order = range(table.n_tests)
    reference = _run_tuple(NAIVE.procedure1(table, order, lower))
    for other in OTHERS:
        assert _run_tuple(other.procedure1(table, order, lower)) == reference, (
            _backend_id(other)
        )


@settings(max_examples=25, deadline=None)
@given(table=tables(min_faults=2), data=st.data())
def test_candidate_distances_identical(table, data):
    """dist(z) per candidate matches in value, signature and members."""
    # Compare both on the fresh partition and on a refined mid-run one.
    partition = Partition(range(table.n_faults))
    refined = NAIVE.procedure1(table, range(table.n_tests), 10).partition
    for p in (partition, refined):
        for j in range(table.n_tests):
            reference = NAIVE.candidate_distances(table, j, p)
            for other in OTHERS:
                assert other.candidate_distances(table, j, p) == reference, (
                    _backend_id(other)
                )


@settings(max_examples=25, deadline=None)
@given(table=tables())
def test_pair_counts_identical(table):
    baselines = NAIVE.procedure1(table, range(table.n_tests), 10).baselines
    # A baseline outside Z_j ∪ {PASS} must count like "splits nothing".
    junk = [(97, 98, 99)] * table.n_tests
    want_for = NAIVE.indistinguished_for(table, baselines)
    want_junk = NAIVE.indistinguished_for(table, junk)
    want_passfail = NAIVE.passfail_indistinguished(table)
    want_full = NAIVE.full_indistinguished(table)
    for other in OTHERS:
        name = _backend_id(other)
        assert other.indistinguished_for(table, baselines) == want_for, name
        assert other.indistinguished_for(table, junk) == want_junk, name
        assert other.passfail_indistinguished(table) == want_passfail, name
        assert other.full_indistinguished(table) == want_full, name


@settings(max_examples=20, deadline=None)
@given(table=tables(min_faults=2, min_tests=1), max_passes=st.sampled_from([1, 10]))
def test_replace_identical(table, max_passes):
    """Procedure 2: identical trajectory, not just an equal final count."""
    baselines = NAIVE.procedure1(table, range(table.n_tests), 10).baselines
    reference = NAIVE.replace(table, baselines, max_passes)
    for other in OTHERS:
        assert other.replace(table, baselines, max_passes) == reference, (
            _backend_id(other)
        )


def _strip_seconds(report_dict):
    return {k: v for k, v in report_dict.items() if not k.endswith("_seconds")}


def _kernel_counters(registry):
    counters = registry.snapshot()["counters"]
    return {
        name: value
        for name, value in counters.items()
        if name.startswith(("procedure1.", "procedure2.", "build."))
    }


def _build_result(table, seed, backend_name):
    with scoped_registry() as registry:
        built = build(
            table,
            config=DictionaryConfig(seed=seed, calls1=3, backend=backend_name),
        )
        return (
            built.dictionary.baselines,
            [built.dictionary.row(i) for i in range(table.n_faults)],
            _strip_seconds(built.report.as_dict()),
            _kernel_counters(registry),
        )


@settings(max_examples=10, deadline=None)
@given(table=tables(), seed=st.integers(min_value=0, max_value=10**4))
def test_full_build_identical(table, seed):
    """End-to-end via repro.api.build: dictionary, report and metrics."""
    reference = _build_result(table, seed, "naive")
    assert _build_result(table, seed, "packed") == reference
    assert _build_result(table, seed, "vector") == reference
    with fallback_vector_registered():
        assert _build_result(table, seed, "vector") == reference


class TestDegenerateTables:
    """The shapes most likely to trip backend bookkeeping, pinned explicitly."""

    def test_no_tests(self):
        table = random_table(6, 0, 2, seed=1)
        for backend in (NAIVE,) + OTHERS:
            run = backend.procedure1(table, range(0), 10)
            assert run.baselines == [] and run.distinguished == 0
            assert backend.full_indistinguished(table) == 15  # C(6, 2)

    def test_too_few_faults(self):
        for n_faults in (0, 1):
            table = random_table(n_faults, 4, 2, seed=2)
            reference = _run_tuple(NAIVE.procedure1(table, range(4), 10))
            for backend in OTHERS:
                run = backend.procedure1(table, range(4), 10)
                assert _run_tuple(run) == reference, _backend_id(backend)
                assert run.distinguished == 0

    def test_all_identical_column(self):
        # density=1.0 with one output: every fault fails every test with
        # the same signature, so no candidate ever splits anything.
        table = random_table(8, 3, 1, seed=3, density=1.0)
        for j in range(table.n_tests):
            assert len(table.failing_signatures(j)) <= 1
        reference = _run_tuple(NAIVE.procedure1(table, range(3), 10))
        for backend in OTHERS:
            run = backend.procedure1(table, range(3), 10)
            assert _run_tuple(run) == reference, _backend_id(backend)
            assert run.winners == []
            assert run.baselines == [PASS] * 3 or all(
                b == run.baselines[0] for b in run.baselines
            )


class TestAdversarialShapes:
    """Satellite shapes every backend must agree on, build included."""

    BACKENDS = ("naive", "packed", "vector")

    def _builds_agree(self, table, calls=3, seed=0):
        reference = _build_result(table, seed, "naive")
        for name in ("packed", "vector"):
            assert _build_result(table, seed, name) == reference, name
        with fallback_vector_registered():
            assert _build_result(table, seed, "vector") == reference
        return reference

    def test_zero_tests_build(self):
        self._builds_agree(random_table(7, 0, 2, seed=11))

    def test_single_fault(self):
        table = random_table(1, 5, 2, seed=12, density=0.7)
        reference = _run_tuple(NAIVE.procedure1(table, range(5), 10))
        for backend in OTHERS:
            assert _run_tuple(backend.procedure1(table, range(5), 10)) == (
                reference
            ), _backend_id(backend)
        self._builds_agree(table)

    def test_all_pass_columns(self):
        # density=0: no fault ever fails, every candidate set is {PASS}.
        table = random_table(9, 4, 2, seed=13, density=0.0)
        for backend in (NAIVE,) + OTHERS:
            run = backend.procedure1(table, range(4), 10)
            assert run.baselines == [PASS] * 4
            assert run.distinguished == 0 and run.winners == []
            assert backend.passfail_indistinguished(table) == 36  # C(9, 2)
        self._builds_agree(table)

    def test_every_signature_distinct_columns(self):
        table = distinct_table(6, 3)
        for j in range(3):
            assert len(table.failing_signatures(j)) == 6
        reference = _run_tuple(NAIVE.procedure1(table, range(3), 10))
        # Each test's winning candidate splits one singleton off the big
        # class: 5 + 4 + 3 pairs over the three tests.
        assert reference[1] == 12
        for backend in OTHERS:
            assert _run_tuple(backend.procedure1(table, range(3), 10)) == (
                reference
            ), _backend_id(backend)
        self._builds_agree(table)

    def test_restart_ceiling_early_exit_build(self):
        # Enough distinct-signature tests to resolve every pair: the very
        # first restart reaches the ceiling and the restart driver must
        # stop early — identically under every backend.
        table = distinct_table(4, 4)
        reference = self._builds_agree(table, seed=4)
        report = reference[2]
        assert report["procedure1_calls"] < 3, (
            "ceiling early-exit did not trigger; the shape is wrong"
        )
