"""Differential property tests: the packed kernels vs the naive reference.

Every public kernel primitive must be *byte-identical* across backends —
not statistically close, not equal-up-to-tie-breaks.  Hypothesis hunts
for a response table where any primitive (candidate scoring, the full
Procedure 1 run, pair counting, Procedure 2) disagrees.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import DictionaryConfig, build
from repro.dictionaries.resolution import Partition
from repro.kernels import get_backend
from repro.obs import scoped_registry
from repro.sim import PASS
from tests.util import random_table

NAIVE = get_backend("naive")
PACKED = get_backend("packed")


@st.composite
def tables(draw, min_faults=0, max_faults=14, min_tests=0, max_tests=7):
    n_faults = draw(st.integers(min_value=min_faults, max_value=max_faults))
    n_tests = draw(st.integers(min_value=min_tests, max_value=max_tests))
    n_outputs = draw(st.integers(min_value=1, max_value=3))
    density = draw(st.sampled_from([0.0, 0.2, 0.5, 0.8, 1.0]))
    seed = draw(st.integers(min_value=0, max_value=10**6))
    return random_table(n_faults, n_tests, n_outputs, seed, density=density)


def _run_tuple(run):
    return (run.baselines, run.distinguished, run.evaluated, run.cutoffs,
            run.winners)


@settings(max_examples=40, deadline=None)
@given(table=tables(), lower=st.sampled_from([1, 2, 10, 10**9]))
def test_procedure1_identical(table, lower):
    """Same baselines, counts, evaluation totals, cutoffs and winners."""
    order = range(table.n_tests)
    naive_run = NAIVE.procedure1(table, order, lower)
    packed_run = PACKED.procedure1(table, order, lower)
    assert _run_tuple(packed_run) == _run_tuple(naive_run)


@settings(max_examples=30, deadline=None)
@given(table=tables(min_faults=2), data=st.data())
def test_candidate_distances_identical(table, data):
    """dist(z) per candidate matches in value, signature and members."""
    # Compare both on the fresh partition and on a refined mid-run one.
    partition = Partition(range(table.n_faults))
    refined = NAIVE.procedure1(table, range(table.n_tests), 10).partition
    for p in (partition, refined):
        for j in range(table.n_tests):
            assert PACKED.candidate_distances(table, j, p) == (
                NAIVE.candidate_distances(table, j, p)
            )


@settings(max_examples=30, deadline=None)
@given(table=tables())
def test_pair_counts_identical(table):
    baselines = NAIVE.procedure1(table, range(table.n_tests), 10).baselines
    assert PACKED.indistinguished_for(table, baselines) == (
        NAIVE.indistinguished_for(table, baselines)
    )
    # A baseline outside Z_j ∪ {PASS} must count like "splits nothing".
    junk = [(97, 98, 99)] * table.n_tests
    assert PACKED.indistinguished_for(table, junk) == (
        NAIVE.indistinguished_for(table, junk)
    )
    assert PACKED.passfail_indistinguished(table) == (
        NAIVE.passfail_indistinguished(table)
    )
    assert PACKED.full_indistinguished(table) == NAIVE.full_indistinguished(table)


@settings(max_examples=25, deadline=None)
@given(table=tables(min_faults=2, min_tests=1), max_passes=st.sampled_from([1, 10]))
def test_replace_identical(table, max_passes):
    """Procedure 2: identical trajectory, not just an equal final count."""
    baselines = NAIVE.procedure1(table, range(table.n_tests), 10).baselines
    assert PACKED.replace(table, baselines, max_passes) == (
        NAIVE.replace(table, baselines, max_passes)
    )


def _strip_seconds(report_dict):
    return {k: v for k, v in report_dict.items() if not k.endswith("_seconds")}


def _kernel_counters(registry):
    counters = registry.snapshot()["counters"]
    return {
        name: value
        for name, value in counters.items()
        if name.startswith(("procedure1.", "procedure2.", "build."))
    }


@settings(max_examples=12, deadline=None)
@given(table=tables(), seed=st.integers(min_value=0, max_value=10**4))
def test_full_build_identical(table, seed):
    """End-to-end via repro.api.build: dictionary, report and metrics."""
    results = {}
    for backend in ("naive", "packed"):
        with scoped_registry() as registry:
            built = build(
                table,
                config=DictionaryConfig(seed=seed, calls1=3, backend=backend),
            )
            results[backend] = (
                built.dictionary.baselines,
                [built.dictionary.row(i) for i in range(table.n_faults)],
                _strip_seconds(built.report.as_dict()),
                _kernel_counters(registry),
            )
    assert results["packed"] == results["naive"]


class TestDegenerateTables:
    """The shapes most likely to trip packed bookkeeping, pinned explicitly."""

    def test_no_tests(self):
        table = random_table(6, 0, 2, seed=1)
        for backend in (NAIVE, PACKED):
            run = backend.procedure1(table, range(0), 10)
            assert run.baselines == [] and run.distinguished == 0
        assert PACKED.full_indistinguished(table) == 15  # C(6, 2)

    def test_too_few_faults(self):
        for n_faults in (0, 1):
            table = random_table(n_faults, 4, 2, seed=2)
            naive_run = NAIVE.procedure1(table, range(4), 10)
            packed_run = PACKED.procedure1(table, range(4), 10)
            assert _run_tuple(packed_run) == _run_tuple(naive_run)
            assert packed_run.distinguished == 0

    def test_all_identical_column(self):
        # density=1.0 with one output: every fault fails every test with
        # the same signature, so no candidate ever splits anything.
        table = random_table(8, 3, 1, seed=3, density=1.0)
        for j in range(table.n_tests):
            assert len(table.failing_signatures(j)) <= 1
        naive_run = NAIVE.procedure1(table, range(3), 10)
        packed_run = PACKED.procedure1(table, range(3), 10)
        assert _run_tuple(packed_run) == _run_tuple(naive_run)
        assert packed_run.winners == []
        assert packed_run.baselines == [PASS] * 3 or all(
            b == packed_run.baselines[0] for b in packed_run.baselines
        )
