"""Differential tests for the class-major ``refine_scores`` primitive.

Every backend's ``refine_scores`` must be byte-identical to the naive
reference — and to the eager ``candidate_distances`` dists it replaces,
and to the fault-block-sharded fold of :mod:`repro.parallel.hierarchy`
for any block plan.  Partitions are driven to arbitrary refinement
depths first, so the equality holds mid-build, not just on the trivial
one-class state.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dictionaries.samediff import _candidate_distances, _refine_scores
from repro.kernels import VectorBackend, get_backend
from repro.parallel.hierarchy import FaultBlockPlan, sharded_refine_scores
from repro.partition import FaultPartition
from tests.util import random_table

NAIVE = get_backend("naive")
PACKED = get_backend("packed")
VECTOR = get_backend("vector")
VECTOR_FALLBACK = VectorBackend(force_fallback=True)

BACKENDS = {
    "naive": NAIVE,
    "packed": PACKED,
    "vector": VECTOR,
    "vector-fallback": VECTOR_FALLBACK,
}


def _partition_at_depth(table, depth: int) -> FaultPartition:
    """The partition after refining by the first ``depth`` interned columns."""
    partition = FaultPartition(range(table.n_faults))
    interned = table.interned
    for j in range(min(depth, table.n_tests)):
        partition.refine(interned.cols[j])
    return partition


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    n_faults=st.integers(min_value=2, max_value=14),
    n_tests=st.integers(min_value=1, max_value=6),
    density=st.sampled_from([0.2, 0.5, 0.8]),
    depth=st.integers(min_value=0, max_value=6),
)
def test_refine_scores_matches_reference_everywhere(
    seed, n_faults, n_tests, density, depth
):
    table = random_table(n_faults, n_tests, 2, seed=seed, density=density)
    partition = _partition_at_depth(table, depth)
    for j in range(n_tests):
        reference = _refine_scores(table, j, partition)
        # The eager reference computes the same dists with member lists.
        eager = [d for d, _, _ in _candidate_distances(table, j, partition)]
        assert reference == eager
        for name, backend in BACKENDS.items():
            got = list(backend.refine_scores(table, j, partition))
            assert got == reference, f"{name} disagrees on test {j}"


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    n_faults=st.integers(min_value=2, max_value=14),
    n_tests=st.integers(min_value=1, max_value=5),
    depth=st.integers(min_value=0, max_value=4),
    n_blocks=st.sampled_from([1, 2, 3, 5, 8]),
)
def test_sharded_fold_matches_reference(seed, n_faults, n_tests, depth, n_blocks):
    """Any fault-block plan folds to the exact unsharded dist vector."""
    table = random_table(n_faults, n_tests, 3, seed=seed, density=0.5)
    partition = _partition_at_depth(table, depth)
    plan = FaultBlockPlan(table.n_faults, n_blocks)
    for j in range(n_tests):
        assert sharded_refine_scores(table, j, partition, plan) == _refine_scores(
            table, j, partition
        )


@pytest.mark.parametrize("name", sorted(BACKENDS))
def test_refine_scores_on_singleton_partition(name):
    """A fully-refined partition scores zero everywhere, every backend."""
    table = random_table(6, 3, 2, seed=9, density=0.9)
    partition = FaultPartition(range(6))
    partition.refine(list(range(6)))
    assert partition.all_singletons
    for j in range(table.n_tests):
        scores = list(BACKENDS[name].refine_scores(table, j, partition))
        assert scores == [0] * len(scores)
