"""Property tests: interning → word-array packing → unpacking is exact.

The vector backend trusts :class:`~repro.kernels.interning.VectorLayout`
to be a lossless re-expression of the interned table.  Hypothesis builds
random tables and asserts, for **both** construction paths (numpy and
pure-Python ``array``), that

* the two paths produce byte-identical arrays,
* unpacking recovers ``cols`` and ``det_words`` exactly,
* the CSR detected-entry encoding agrees with the columns and the
  signature maps (``sigs``/``sig_ids``) entry for entry,
* the layout pickles with its table and sheds any cached numpy views.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import VectorBackend, build_vector_layout, unpack_vector_layout
from repro.kernels.interning import WORD_BITS
from tests.util import numpy_import_blocked, random_table


def _numpy_available():
    try:
        import numpy  # noqa: F401

        return True
    except ImportError:
        return False


@st.composite
def tables(draw):
    n_faults = draw(st.integers(min_value=0, max_value=20))
    n_tests = draw(st.integers(min_value=0, max_value=9))
    n_outputs = draw(st.integers(min_value=1, max_value=3))
    density = draw(st.sampled_from([0.0, 0.3, 0.6, 1.0]))
    seed = draw(st.integers(min_value=0, max_value=10**6))
    return random_table(n_faults, n_tests, n_outputs, seed, density=density)


def _layout_fields(layout):
    return (
        layout.n_faults,
        layout.n_tests,
        layout.det_width,
        list(layout.col_words),
        list(layout.det_offsets),
        list(layout.det_index),
        list(layout.det_sid),
        list(layout.det_blocks),
    )


@settings(max_examples=50, deadline=None)
@given(table=tables())
def test_pack_unpack_round_trips_exactly(table):
    interned = table.interned
    layout = build_vector_layout(interned, use_numpy=False)

    # Dimensions and invariants.
    k, n = interned.n_tests, interned.n_faults
    assert layout.det_width == (k + WORD_BITS - 1) // WORD_BITS
    assert len(layout.col_words) == n * k
    assert list(layout.det_offsets) == sorted(layout.det_offsets)
    assert len(layout.det_index) == len(layout.det_sid) == layout.det_offsets[k]

    # Ids and detection words come back exactly.
    cols, det_words = unpack_vector_layout(layout)
    assert cols == interned.cols
    assert det_words == interned.det_words

    # The CSR entries agree with the columns and the signature maps.
    for j in range(k):
        lo, hi = layout.det_offsets[j], layout.det_offsets[j + 1]
        entries = [
            (layout.det_index[pos], layout.det_sid[pos])
            for pos in range(lo, hi)
        ]
        expected = [(i, sid) for i, sid in enumerate(interned.cols[j]) if sid]
        assert entries == expected
        for i, sid in entries:
            signature = interned.sigs[j][sid]
            assert interned.sig_ids[j][signature] == sid
            assert signature != ()  # detected entries are failing


@settings(max_examples=50, deadline=None)
@given(table=tables())
def test_numpy_and_python_layouts_are_byte_identical(table):
    if not _numpy_available():
        pytest.skip("numpy not importable; single-path environment")
    interned = table.interned
    via_python = build_vector_layout(interned, use_numpy=False)
    via_numpy = build_vector_layout(interned, use_numpy=True)
    assert _layout_fields(via_numpy) == _layout_fields(via_python)
    # And bytes, not just values: the buffers feed zero-copy numpy views.
    for field in ("col_words", "det_offsets", "det_index", "det_sid",
                  "det_blocks"):
        assert getattr(via_numpy, field).tobytes() == (
            getattr(via_python, field).tobytes()
        ), field


@settings(max_examples=25, deadline=None)
@given(table=tables())
def test_layout_pickles_with_table_and_sheds_views(table):
    backend = VectorBackend()
    backend.prepare(table)
    restored = pickle.loads(pickle.dumps(table))
    layout = restored.interned.vector
    assert "_np_views" not in layout.__dict__, (
        "cached numpy views must not ship in the pickle"
    )
    assert _layout_fields(layout) == _layout_fields(table.interned.vector)


def test_blocked_numpy_builds_the_same_layout_and_backend_falls_back():
    table = random_table(12, 6, 2, seed=9, density=0.4)
    reference = build_vector_layout(table.interned, use_numpy=False)
    with numpy_import_blocked():
        auto = build_vector_layout(table.interned)  # auto-detect: no numpy
        backend = VectorBackend()  # auto-detect: must fall back
    assert _layout_fields(auto) == _layout_fields(reference)
    assert not backend.uses_numpy
    run = backend.procedure1(table, range(table.n_tests), 10)
    from repro.kernels import get_backend

    want = get_backend("naive").procedure1(table, range(table.n_tests), 10)
    assert (run.baselines, run.distinguished, run.evaluated, run.cutoffs,
            run.winners) == (want.baselines, want.distinguished,
                             want.evaluated, want.cutoffs, want.winners)


def test_word_boundary_tables_round_trip():
    """n_tests at and across the 64-bit word boundary."""
    for k in (63, 64, 65):
        table = random_table(5, k, 2, seed=k, density=0.5)
        layout = build_vector_layout(table.interned, use_numpy=False)
        assert layout.det_width == (k + 63) // 64
        cols, det_words = unpack_vector_layout(layout)
        assert cols == table.interned.cols
        assert det_words == table.interned.det_words
