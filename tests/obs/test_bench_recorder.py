"""The BENCH_*.json schema: recorder, round trip, versioning, merge."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    BENCH_SCHEMA,
    BenchRecorder,
    BenchResult,
    BenchSchemaError,
    scoped_registry,
)
from repro.obs.bench import BenchCase, load_results


def small_result(area="demo", wall=0.5, quick=False):
    recorder = BenchRecorder(area, quick=quick)
    case = recorder.case("alpha", circuit="p208")
    case.record(wall, cpu_seconds=wall * 0.9)
    case.iterations(10)
    case.info(faults=291)
    case.gate("speedup", 4.0, higher_is_better=True, tolerance=0.25)
    return recorder.result()


class TestRecorder:
    def test_measure_records_wall_and_cpu(self):
        recorder = BenchRecorder("demo")
        case = recorder.case("timed")
        with case.measure():
            sum(range(10000))
        bench_case = recorder.result().case("timed")
        assert bench_case.rounds == 1
        assert bench_case.wall_seconds > 0
        assert bench_case.cpu_seconds is not None

    def test_run_keeps_best_of_rounds_and_last_value(self):
        recorder = BenchRecorder("demo")
        case = recorder.case("fn")
        value = case.run(lambda: 42, rounds=3)
        assert value == 42
        bench_case = recorder.result().case("fn")
        assert bench_case.rounds == 3
        assert bench_case.wall_seconds == min(bench_case.wall_samples)

    def test_case_reentry_merges_into_one_case(self):
        recorder = BenchRecorder("demo")
        recorder.case("same").record(0.5)
        recorder.case("same").record(0.2)
        assert len(recorder) == 1
        assert recorder.result().case("same").wall_seconds == 0.2

    def test_throughput_derived_from_iterations(self):
        case = BenchCase(name="x", iterations=100, wall_seconds=0.5)
        assert case.throughput == pytest.approx(200.0)
        assert BenchCase(name="y").throughput is None

    def test_result_snapshots_the_registry(self):
        with scoped_registry() as registry:
            registry.counter("demo.count").inc(7)
            registry.timer("demo.seconds").record(0.25)
            result = small_result()
        assert result.metrics["counters"]["demo.count"] == 7
        timers = result.metrics["timers"]["demo.seconds"]
        for key in ("p50", "p90", "p95", "p99"):
            assert key in timers


class TestSchema:
    def test_round_trip(self):
        result = small_result()
        restored = BenchResult.from_dict(json.loads(result.to_json()))
        assert restored.area == result.area
        case = restored.case("alpha")
        assert case.params == {"circuit": "p208"}
        assert case.wall_seconds == pytest.approx(0.5)
        assert case.throughput == pytest.approx(20.0)
        assert case.info == {"faults": 291}
        assert case.gates["speedup"] == {
            "value": 4.0, "higher_is_better": True, "tolerance": 0.25,
        }

    def test_write_and_load(self, tmp_path):
        path = small_result().write(tmp_path)
        assert path.name == "BENCH_demo.json"
        assert BenchResult.load(path).case("alpha").wall_seconds == 0.5

    @pytest.mark.parametrize("schema", (0, BENCH_SCHEMA + 1, None, "1"))
    def test_other_schema_versions_are_rejected(self, schema):
        data = small_result().as_dict()
        data["schema"] = schema
        with pytest.raises(BenchSchemaError):
            BenchResult.from_dict(data)

    def test_malformed_payloads_are_rejected(self, tmp_path):
        with pytest.raises(BenchSchemaError):
            BenchResult.from_dict([1, 2, 3])
        with pytest.raises(BenchSchemaError):
            BenchResult.from_dict({"schema": BENCH_SCHEMA})  # no area
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{not json")
        with pytest.raises(BenchSchemaError):
            BenchResult.load(bad)


class TestMerge:
    def test_merge_keeps_best_timing_and_sums_rounds(self):
        first = small_result(wall=0.5)
        second = small_result(wall=0.3)
        first.merge(second)
        case = first.case("alpha")
        assert case.wall_seconds == pytest.approx(0.3)
        assert case.rounds == 2
        assert first.runs == 2

    def test_merge_keeps_the_better_gate_value(self):
        first = small_result()
        second = small_result()
        second.case("alpha").gates["speedup"]["value"] = 6.0
        first.merge(second)
        assert first.case("alpha").gates["speedup"]["value"] == 6.0
        # Lower-is-better gates keep the smaller side.
        a = small_result()
        b = small_result()
        for result, value in ((a, 1.02), (b, 1.01)):
            result.case("alpha").gates["overhead"] = {
                "value": value, "higher_is_better": False, "tolerance": 0.1,
            }
        a.merge(b)
        assert a.case("alpha").gates["overhead"]["value"] == 1.01

    def test_merge_appends_unknown_cases(self):
        first = small_result()
        second = small_result()
        second.cases.append(BenchCase(name="beta", wall_seconds=1.0, rounds=1))
        first.merge(second)
        assert {c.name for c in first.cases} == {"alpha", "beta"}

    def test_merge_rejects_a_different_area(self):
        with pytest.raises(ValueError):
            small_result("demo").merge(small_result("other"))

    def test_quick_only_if_both_runs_were_quick(self):
        full = small_result(quick=False)
        quick = small_result(quick=True)
        quick.merge(small_result(quick=True))
        assert quick.quick
        full.merge(quick)
        assert not full.quick

    def test_load_results_merges_duplicate_areas(self, tmp_path):
        small_result(wall=0.5).write(tmp_path)
        other = small_result(wall=0.2)
        (tmp_path / "BENCH_demo2.json").write_text(other.to_json())
        # Same area under two filenames: load_results folds them.
        results = load_results(tmp_path)
        assert set(results) == {"demo"}
        assert results["demo"].case("alpha").wall_seconds == pytest.approx(0.2)
