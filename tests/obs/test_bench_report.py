"""The regression gate: tolerance edges, baselines, the --check exit code."""

from __future__ import annotations

import argparse
import io

import pytest

from repro.obs import BenchRecorder
from repro.obs.benchreport import (
    INFO,
    MISSING,
    NEW,
    OK,
    REGRESSION,
    add_report_arguments,
    compare_area,
    compare_all,
    render_trajectory,
    run_report,
    summarize,
)


def result(area="kernel", wall=1.0, speedup=4.0, quick=False, case="alpha"):
    recorder = BenchRecorder(area, quick=quick)
    handle = recorder.case(case)
    handle.record(wall)
    handle.gate("speedup", speedup, higher_is_better=True, tolerance=0.25)
    return recorder.result()


def by_metric(deltas):
    return {(d.case, d.metric): d for d in deltas}


class TestToleranceEdges:
    def test_within_tolerance_is_ok(self):
        deltas = compare_area(result(wall=1.5), result(wall=1.0),
                              wall_tolerance=1.0)
        assert by_metric(deltas)[("alpha", "wall_seconds")].status == OK

    def test_exactly_at_tolerance_passes(self):
        # wall: exactly 2x the baseline with tolerance 1.0 — the boundary.
        deltas = compare_area(result(wall=2.0), result(wall=1.0),
                              wall_tolerance=1.0)
        assert by_metric(deltas)[("alpha", "wall_seconds")].status == OK
        # gate: exactly at the 25% floor of a higher-is-better metric.
        deltas = compare_area(result(speedup=3.0), result(speedup=4.0))
        assert by_metric(deltas)[("alpha", "speedup")].status == OK

    def test_beyond_tolerance_regresses(self):
        deltas = compare_area(result(wall=2.001), result(wall=1.0),
                              wall_tolerance=1.0)
        assert by_metric(deltas)[("alpha", "wall_seconds")].status == REGRESSION

    def test_gated_metric_direction(self):
        # higher-is-better: dropping below baseline*(1-tol) fails…
        deltas = compare_area(result(speedup=2.9), result(speedup=4.0))
        assert by_metric(deltas)[("alpha", "speedup")].status == REGRESSION
        # …rising never does.
        deltas = compare_area(result(speedup=9.0), result(speedup=4.0))
        assert by_metric(deltas)[("alpha", "speedup")].status == "improved"

    def test_faster_wall_is_an_improvement(self):
        deltas = compare_area(result(wall=0.5), result(wall=1.0))
        assert by_metric(deltas)[("alpha", "wall_seconds")].status == "improved"


class TestBaselineShapes:
    def test_missing_baseline_area_is_new_and_passes(self):
        deltas = compare_area(result(), None)
        assert all(d.status == NEW for d in deltas)

    def test_new_case_in_current_is_new(self):
        current = result()
        current.merge(result(case="beta", wall=9.9, speedup=1.0))
        deltas = compare_area(current, result())
        statuses = by_metric(deltas)
        assert statuses[("beta", "wall_seconds")].status == NEW
        assert statuses[("alpha", "wall_seconds")].status == OK

    def test_case_gone_from_current_is_reported_missing(self):
        baseline = result()
        baseline.merge(result(case="beta"))
        deltas = compare_area(result(), baseline)
        assert by_metric(deltas)[("beta", "wall_seconds")].status == MISSING

    def test_quick_vs_full_mode_is_informational_only(self):
        deltas = compare_area(result(wall=99.0, quick=False),
                              result(wall=1.0, quick=True))
        statuses = {d.status for d in deltas}
        assert statuses == {INFO}

    def test_compare_all_covers_every_area(self):
        current = {"a": result("a"), "b": result("b")}
        deltas = compare_all(current, {"a": result("a")})
        areas = {d.area for d in deltas}
        assert areas == {"a", "b"}


class TestReportRun:
    def _args(self, results, baselines, **overrides):
        parser = argparse.ArgumentParser()
        add_report_arguments(parser)
        argv = ["--results", str(results), "--baselines", str(baselines)]
        for flag, on in overrides.items():
            if on:
                argv.append(f"--{flag}")
        return parser.parse_args(argv)

    def test_injected_synthetic_regression_fails_check(self, tmp_path):
        """The acceptance scenario: a 3x slowdown must trip the gate."""
        results = tmp_path / "now"
        baselines = tmp_path / "base"
        results.mkdir(), baselines.mkdir()
        result(wall=1.0).write(baselines)
        result(wall=3.0).write(results)  # synthetic regression: 3x slower
        out = io.StringIO()
        assert run_report(self._args(results, baselines, check=True), out=out) == 1
        # Without --check the same report is informational.
        assert run_report(self._args(results, baselines), out=io.StringIO()) == 0

    def test_clean_run_passes_check(self, tmp_path):
        results = tmp_path / "now"
        baselines = tmp_path / "base"
        results.mkdir(), baselines.mkdir()
        result(wall=1.0).write(baselines)
        result(wall=1.1).write(results)
        out = io.StringIO()
        assert run_report(self._args(results, baselines, check=True), out=out) == 0
        assert "wall_seconds" in out.getvalue()

    def test_update_adopts_current_results(self, tmp_path):
        results = tmp_path / "now"
        baselines = tmp_path / "base"
        results.mkdir()
        result(wall=1.0).write(results)
        args = self._args(results, baselines, update=True)
        assert run_report(args, out=io.StringIO()) == 0
        assert (baselines / "BENCH_kernel.json").exists()
        # After adoption, a check against the new baselines is clean.
        assert run_report(self._args(results, baselines, check=True),
                          out=io.StringIO()) == 0

    def test_no_results_is_a_usage_error(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        args = self._args(empty, tmp_path / "base")
        assert run_report(args, out=io.StringIO()) == 2


class TestRendering:
    def test_trajectory_table_and_summary(self):
        deltas = compare_area(result(wall=3.0), result(wall=1.0))
        table = render_trajectory(deltas)
        assert "wall_seconds" in table and "kernel" in table
        assert "regression" in summarize(deltas)
