"""Integration: the instrumented pipeline fills the registry as documented."""

import json

from repro import load_circuit, prepare_for_test
from repro.cli import main
from tests.util import build_sd
from repro.faults import collapse
from repro.obs import CallbackProgress, load_jsonl, scoped_registry, validate_nesting
from repro.sim import ResponseTable, TestSet


def small_table():
    netlist = prepare_for_test(load_circuit("c17"))
    faults = collapse(netlist)
    tests = TestSet.random(netlist.inputs, 16, seed=7)
    return ResponseTable.build(netlist, faults, tests)


class TestBuildCounters:
    def test_build_same_different_emits_expected_counters(self):
        with scoped_registry() as registry:
            table = small_table()
            _, report = build_sd(table, calls=3, seed=0)
        counters = registry.snapshot()["counters"]
        assert counters["procedure1.calls"] == report.procedure1_calls
        assert counters["build.restarts"] == report.procedure1_calls
        assert counters["procedure1.candidates_evaluated"] > 0
        assert counters["procedure1.pairs_distinguished"] > 0
        assert "procedure1.lower_cutoffs" in counters
        # The response capture runs inside the scope too.
        assert counters["faultsim.faults_simulated"] == table.n_faults
        timers = registry.snapshot()["timers"]
        assert timers["build.procedure1_seconds"]["count"] == 1

    def test_build_report_carries_phase_seconds_and_as_dict(self):
        with scoped_registry():
            table = small_table()
            _, report = build_sd(table, calls=2, seed=1)
        assert report.procedure1_seconds > 0
        data = report.as_dict()
        assert data["procedure1_calls"] == report.procedure1_calls
        assert data["procedure1_seconds"] == report.procedure1_seconds
        assert data["indistinguished_procedure2"] == report.indistinguished_procedure2
        json.dumps(data)  # JSON-serialisable end to end

    def test_progress_callback_sees_every_restart(self):
        events = []
        with scoped_registry():
            table = small_table()
            _, report = build_sd(
                table,
                calls=3,
                seed=0,
                progress=CallbackProgress(
                    lambda stage, done, total, **info: events.append((stage, done))
                ),
            )
        restarts = [e for e in events if e[0] == "build.procedure1"]
        assert len(restarts) == report.procedure1_calls


class TestCliObservability:
    def test_table6_metrics_and_trace_files(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.json"
        trace_path = tmp_path / "t.jsonl"
        assert (
            main(
                [
                    "table6",
                    "--circuit",
                    "p208",
                    "--calls",
                    "2",
                    "--metrics-out",
                    str(metrics_path),
                    "--trace",
                    str(trace_path),
                ]
            )
            == 0
        )
        snapshot = json.loads(metrics_path.read_text())
        for name in (
            "procedure1.calls",
            "procedure1.lower_cutoffs",
            "procedure2.replacements",
            "faultsim.faults_simulated",
        ):
            assert name in snapshot["counters"], name
        records = load_jsonl(trace_path.read_text())
        assert records
        validate_nesting(records)
        names = {record["name"] for record in records}
        assert "table6.row" in names
        assert "procedure1.call" in names
        out = capsys.readouterr().out
        assert "Build instrumentation" in out

    def test_metrics_to_stdout_moves_report_to_stderr(self, capsys):
        assert (
            main(["table6", "p208", "--calls", "2", "--metrics-out", "-"]) == 0
        )
        captured = capsys.readouterr()
        json.loads(captured.out)  # stdout is pure JSON
        assert "Table 6" in captured.err

    def test_table6_requires_a_circuit(self, capsys):
        assert main(["table6"]) == 1

    def test_diagnose_with_metrics(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.json"
        assert (
            main(
                [
                    "diagnose",
                    "s27",
                    "--calls",
                    "2",
                    "--metrics-out",
                    str(metrics_path),
                ]
            )
            == 0
        )
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["counters"]["diagnosis.lookups"] == 3  # one per dictionary
        assert "injected:" in capsys.readouterr().out

    def test_atpg_with_progress(self, capsys):
        assert main(["atpg", "s27", "--progress"]) == 0
        captured = capsys.readouterr()
        assert "[atpg]" in captured.err
        assert "tests," in captured.out
