"""Tests for the metrics registry: instruments, aggregation, scoping."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    NullRegistry,
    disabled,
    get_default_registry,
    scoped_registry,
    set_default_registry,
)
from repro.obs.metrics import MAX_TIMER_SAMPLES


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_create_or_get_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.counter("x") is not registry.counter("y")


class TestGauge:
    def test_last_value_wins(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5


class TestTimer:
    def test_summary_on_known_data(self):
        timer = MetricsRegistry().timer("t")
        for sample in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]:
            timer.record(sample)
        summary = timer.summary()
        assert summary["count"] == 10
        assert summary["total"] == pytest.approx(5.5)
        assert summary["min"] == pytest.approx(0.1)
        assert summary["max"] == pytest.approx(1.0)
        # Nearest-rank: p50 of 10 samples is the 5th, p90 the 9th,
        # p95 and p99 the 10th.
        assert summary["p50"] == pytest.approx(0.5)
        assert summary["p90"] == pytest.approx(0.9)
        assert summary["p95"] == pytest.approx(1.0)
        assert summary["p99"] == pytest.approx(1.0)

    def test_tail_percentiles_reach_snapshot(self):
        """p50/p90/p99 must survive into the registry snapshot (the
        ``--metrics-out`` payload) — the bench recorder reads them there."""
        registry = MetricsRegistry()
        timer = registry.timer("t")
        for sample in range(1, 101):
            timer.record(sample / 100.0)
        timers = registry.snapshot()["timers"]["t"]
        for key in ("p50", "p90", "p95", "p99"):
            assert key in timers
        assert timers["p90"] == pytest.approx(0.90)
        assert timers["p99"] == pytest.approx(0.99)

    def test_percentiles_single_sample(self):
        timer = MetricsRegistry().timer("t")
        timer.record(2.0)
        assert timer.percentile(50) == pytest.approx(2.0)
        assert timer.percentile(95) == pytest.approx(2.0)

    def test_empty_timer(self):
        timer = MetricsRegistry().timer("t")
        assert timer.percentile(50) is None
        assert timer.summary()["count"] == 0

    def test_sample_cap_keeps_exact_aggregates(self):
        timer = MetricsRegistry().timer("t")
        for _ in range(MAX_TIMER_SAMPLES + 100):
            timer.record(1.0)
        assert timer.count == MAX_TIMER_SAMPLES + 100
        assert timer.total == pytest.approx(MAX_TIMER_SAMPLES + 100)
        assert len(timer._samples) == MAX_TIMER_SAMPLES

    def test_stopwatch_records_and_exposes_elapsed(self):
        timer = MetricsRegistry().timer("t")
        with timer.time() as stopwatch:
            pass
        assert stopwatch.elapsed >= 0
        assert timer.count == 1
        assert timer.total == pytest.approx(stopwatch.elapsed)


class TestSnapshot:
    def test_snapshot_shape_and_json(self):
        registry = MetricsRegistry()
        registry.counter("a.calls").inc(3)
        registry.gauge("a.level").set(7)
        registry.timer("a.seconds").record(0.25)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"a.calls": 3}
        assert snapshot["gauges"] == {"a.level": 7}
        assert snapshot["timers"]["a.seconds"]["count"] == 1
        parsed = json.loads(registry.to_json())
        assert parsed == json.loads(json.dumps(snapshot))

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.reset()
        assert registry.snapshot()["counters"] == {}


class TestScoping:
    def test_scoped_registry_isolates_and_restores(self):
        before = get_default_registry()
        with scoped_registry() as inner:
            assert get_default_registry() is inner
            get_default_registry().counter("scoped").inc()
        assert get_default_registry() is before
        assert "scoped" not in before.counters

    def test_scoped_registry_restores_on_exception(self):
        before = get_default_registry()
        with pytest.raises(RuntimeError):
            with scoped_registry():
                raise RuntimeError("boom")
        assert get_default_registry() is before

    def test_set_default_registry_returns_previous(self):
        before = get_default_registry()
        replacement = MetricsRegistry()
        assert set_default_registry(replacement) is before
        assert set_default_registry(before) is replacement

    def test_disabled_discards_everything(self):
        with disabled() as registry:
            assert isinstance(registry, NullRegistry)
            registry.counter("x").inc(10)
            registry.gauge("g").set(1)
            registry.timer("t").record(1.0)
            assert registry.snapshot() == {
                "counters": {},
                "gauges": {},
                "timers": {},
            }
