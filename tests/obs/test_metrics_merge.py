"""Unit tests for the registry merge API (worker → parent aggregation)."""

from __future__ import annotations

import pickle

import pytest

from repro.obs import MetricsRegistry, NullRegistry
from repro.obs.metrics import MAX_TIMER_SAMPLES


def populated_registry():
    registry = MetricsRegistry()
    registry.counter("a").inc(3)
    registry.counter("b").inc(7)
    registry.gauge("g").set(2.5)
    registry.timer("t").record(0.5)
    registry.timer("t").record(1.5)
    return registry


class TestDump:
    def test_dump_is_picklable_plain_data(self):
        dump = populated_registry().dump()
        assert pickle.loads(pickle.dumps(dump)) == dump
        assert dump["counters"] == {"a": 3, "b": 7}
        assert dump["timers"]["t"]["samples"] == [0.5, 1.5]

    def test_merge_into_fresh_registry_reconstructs(self):
        source = populated_registry()
        target = MetricsRegistry()
        target.merge_dump(source.dump())
        assert target.snapshot() == source.snapshot()


class TestMerge:
    def test_counters_add(self):
        target = populated_registry()
        target.merge(populated_registry())
        assert target.counter("a").value == 6
        assert target.counter("b").value == 14

    def test_gauges_last_writer_wins(self):
        target = MetricsRegistry()
        target.gauge("g").set(1.0)
        other = MetricsRegistry()
        other.gauge("g").set(9.0)
        target.merge(other)
        assert target.gauge("g").value == 9.0

    def test_timers_aggregate_exactly(self):
        target = populated_registry()
        other = MetricsRegistry()
        other.timer("t").record(0.1)
        other.timer("t").record(3.0)
        target.merge(other)
        timer = target.timer("t")
        assert timer.count == 4
        assert timer.total == pytest.approx(5.1)
        assert timer.min == pytest.approx(0.1)
        assert timer.max == pytest.approx(3.0)
        assert timer.percentile(95) == pytest.approx(3.0)

    def test_merge_creates_missing_instruments(self):
        target = MetricsRegistry()
        other = MetricsRegistry()
        other.counter("fresh").inc(5)
        other.timer("new_timer").record(1.0)
        target.merge(other)
        assert target.counter("fresh").value == 5
        assert target.timer("new_timer").count == 1

    def test_merge_empty_timer_keeps_bounds_unset(self):
        target = MetricsRegistry()
        other = MetricsRegistry()
        other.timer("t")  # created, never recorded
        target.merge(other)
        assert target.timer("t").min is None
        assert target.timer("t").max is None

    def test_sample_cap_respected_across_merges(self):
        target = MetricsRegistry()
        for _ in range(MAX_TIMER_SAMPLES):
            target.timer("t").record(1.0)
        other = MetricsRegistry()
        other.timer("t").record(2.0)
        target.merge(other)
        timer = target.timer("t")
        assert len(timer._samples) == MAX_TIMER_SAMPLES
        assert timer.count == MAX_TIMER_SAMPLES + 1  # aggregates stay exact
        assert timer.max == pytest.approx(2.0)

    def test_null_registry_discards_merges(self):
        null = NullRegistry()
        null.merge(populated_registry())
        assert null.dump() == {"counters": {}, "gauges": {}, "timers": {}}
        assert null.counter("a").value == 0
        assert null.timer("t").count == 0
