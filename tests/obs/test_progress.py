"""Tests for progress reporting and its throttling."""

import io

from repro.obs import CallbackProgress, NullProgress, StderrProgress


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCallbackProgress:
    def test_forwards_every_event(self):
        events = []
        reporter = CallbackProgress(
            lambda stage, done, total, **info: events.append(
                (stage, done, total, info)
            )
        )
        reporter.report("stage", 1, 10, extra="yes")
        reporter.report("stage", 2)
        assert events == [
            ("stage", 1, 10, {"extra": "yes"}),
            ("stage", 2, None, {}),
        ]


class TestNullProgress:
    def test_swallows_events(self):
        NullProgress().report("stage", 1, 2, anything="goes")


class TestStderrProgressThrottling:
    def make(self, min_interval=1.0):
        clock = FakeClock()
        stream = io.StringIO()
        reporter = StderrProgress(
            min_interval=min_interval, stream=stream, clock=clock
        )
        return reporter, clock, stream

    def test_first_event_always_emits(self):
        reporter, _, stream = self.make()
        reporter.report("build", 1)
        assert stream.getvalue() == "[build] 1\n"

    def test_events_within_interval_are_dropped(self):
        reporter, clock, stream = self.make(min_interval=1.0)
        for done in range(1, 6):
            reporter.report("build", done)
            clock.advance(0.1)
        assert reporter.emitted == 1
        clock.advance(1.0)
        reporter.report("build", 6)
        assert reporter.emitted == 2
        assert stream.getvalue() == "[build] 1\n[build] 6\n"

    def test_terminal_event_bypasses_throttle(self):
        reporter, _, stream = self.make(min_interval=100.0)
        reporter.report("build", 1, 3)
        reporter.report("build", 2, 3)  # throttled
        reporter.report("build", 3, 3)  # terminal: emitted anyway
        assert stream.getvalue() == "[build] 1/3\n[build] 3/3\n"

    def test_stage_change_bypasses_throttle(self):
        reporter, _, _ = self.make(min_interval=100.0)
        reporter.report("one", 1)
        reporter.report("two", 1)
        assert reporter.emitted == 2

    def test_info_rendered_as_key_value(self):
        reporter, _, stream = self.make()
        reporter.report("build", 2, 4, stale=1, best=99)
        assert stream.getvalue() == "[build] 2/4 stale=1 best=99\n"
