"""Tests for span tracing: nesting, JSONL round-trip, defaults."""

import pytest

from repro.obs import (
    NullTracer,
    Tracer,
    get_default_tracer,
    load_jsonl,
    scoped_tracer,
    trace_span,
    validate_nesting,
)


class TestSpans:
    def test_nesting_parent_ids_and_intervals(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", test=3):
                pass
            with tracer.span("sibling"):
                pass
        by_name = {record["name"]: record for record in tracer.records}
        outer, inner, sibling = (
            by_name["outer"], by_name["inner"], by_name["sibling"],
        )
        assert outer["parent"] is None
        assert inner["parent"] == outer["id"]
        assert sibling["parent"] == outer["id"]
        assert inner["attrs"] == {"test": 3}
        # Children finish before the parent, so they appear first.
        assert [r["name"] for r in tracer.records] == ["inner", "sibling", "outer"]
        validate_nesting(tracer.records)
        assert outer["start"] <= inner["start"] <= inner["end"] <= outer["end"]

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                raise ValueError("boom")
        assert [r["name"] for r in tracer.records] == ["outer"]
        with tracer.span("after"):
            pass
        assert tracer.records[-1]["parent"] is None  # stack was unwound

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a", key="value"):
            with tracer.span("b"):
                pass
        path = tmp_path / "trace.jsonl"
        tracer.export_jsonl(str(path))
        records = load_jsonl(path.read_text())
        assert records == tracer.records
        validate_nesting(records)

    def test_empty_export(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        Tracer().export_jsonl(str(path))
        assert path.read_text() == ""
        assert load_jsonl("") == []

    def test_validate_nesting_rejects_escaping_child(self):
        records = [
            {"name": "child", "id": 1, "parent": 0, "start": 0.0, "end": 5.0},
            {"name": "parent", "id": 0, "parent": None, "start": 1.0, "end": 4.0},
        ]
        with pytest.raises(ValueError, match="escapes parent"):
            validate_nesting(records)


class TestDefaults:
    def test_default_is_null_and_records_nothing(self):
        tracer = get_default_tracer()
        assert isinstance(tracer, NullTracer)
        with trace_span("anything", x=1):
            pass
        assert tracer.records == []

    def test_scoped_tracer_captures_trace_span(self):
        with scoped_tracer() as tracer:
            with trace_span("captured"):
                pass
        assert [r["name"] for r in tracer.records] == ["captured"]
        assert isinstance(get_default_tracer(), NullTracer)
