"""Differential tests: parallel builds are byte-identical to serial ones.

The contract under test is the strongest one the engine makes: for a
fixed ``seed``, a build with ``jobs=N`` returns the same
baselines, the same distinguished-pair counts, and the same logical
restart count for every ``N`` — the schedule may speculate and discard,
but the fold must be indistinguishable from the serial loop.
"""

from __future__ import annotations

import pytest

from repro.obs import scoped_registry
from repro.sim import ResponseTable, TestSet
from tests.util import build_sd, random_table


def _circuit_table(netlist, n_tests, seed):
    tests = TestSet.random(netlist.inputs, n_tests, seed=seed)
    from repro.faults import collapse

    return ResponseTable.build(netlist, collapse(netlist), tests)


@pytest.fixture(scope="module")
def circuit_tables(tiny_circuits):
    """Response tables of three small circuits plus a synthetic table."""
    tables = [
        _circuit_table(tiny_circuits[0], 14, seed=1),
        _circuit_table(tiny_circuits[1], 12, seed=2),
        _circuit_table(tiny_circuits[2], 16, seed=3),
    ]
    tables.append(random_table(24, 12, 3, seed=7, density=0.3))
    return tables


def _build(table, seed, jobs, calls=6):
    with scoped_registry():
        return build_sd(table, calls=calls, seed=seed, jobs=jobs)


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_identical_baselines_and_counts(self, circuit_tables, jobs):
        for index, table in enumerate(circuit_tables):
            serial_dict, serial = _build(table, seed=index, jobs=1)
            par_dict, par = _build(table, seed=index, jobs=jobs)
            assert par_dict.baselines == serial_dict.baselines
            assert par.distinguished_procedure1 == serial.distinguished_procedure1
            assert par.distinguished_procedure2 == serial.distinguished_procedure2
            assert par.procedure1_calls == serial.procedure1_calls
            assert par.replacements == serial.replacements
            # Same baselines imply the same encoded rows bit for bit.
            for i in range(table.n_faults):
                assert par_dict.row(i) == serial_dict.row(i)

    def test_distinct_seeds_remain_distinct(self, circuit_tables):
        """The parallel path must not collapse different seeds' streams."""
        table = circuit_tables[3]
        _, a = _build(table, seed=0, jobs=2)
        _, b = _build(table, seed=1, jobs=2)
        # Counts may coincide, but the restart trajectories must be the
        # per-seed serial ones.
        _, sa = _build(table, seed=0, jobs=1)
        _, sb = _build(table, seed=1, jobs=1)
        assert a.procedure1_calls == sa.procedure1_calls
        assert b.procedure1_calls == sb.procedure1_calls

    def test_parallel_metrics_cover_serial_work(self, circuit_tables):
        """Merged worker counters count at least the logical restarts."""
        table = circuit_tables[0]
        with scoped_registry() as registry:
            _, report = build_sd(table, calls=4, seed=0, jobs=2)
        assert registry.counter("procedure1.calls").value >= report.procedure1_calls
        assert registry.counter("parallel.batches").value == report.batches
        speculative = registry.counter("parallel.speculative_restarts").value
        executed = registry.counter("procedure1.calls").value
        assert executed == report.procedure1_calls + speculative
