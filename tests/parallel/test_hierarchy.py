"""Tests for the hierarchical two-level fold (fault-block shards).

The level-1 histogram fold must be exact for any block plan, the sharded
Procedure 1 byte-identical to every backend's, and the end-to-end build
under ``REPRO_FAULT_BLOCKS`` byte-identical to the unsharded serial
path.
"""

from __future__ import annotations

import pytest

from repro.dictionaries.samediff import _refine_scores
from repro.kernels import get_backend
from repro.obs import get_default_registry, scoped_registry
from repro.parallel.hierarchy import (
    FAULT_BLOCKS_ENV,
    FaultBlockPlan,
    HierarchicalFold,
    block_counts,
    fault_blocks_from_env,
    fold_block_counts,
    scores_from_counts,
    sharded_procedure1,
    sharded_refine_scores,
)
from repro.parallel.seeds import restart_order
from repro.partition import FaultPartition, total_pairs
from repro.sim import PASS
from tests.util import build_sd, random_table


class TestFaultBlockPlan:
    def test_blocks_cover_the_fault_range_contiguously(self):
        plan = FaultBlockPlan(17, 4)
        assert plan.blocks[0][0] == 0
        assert plan.blocks[-1][1] == 17
        for (_, hi), (lo, _) in zip(plan.blocks, plan.blocks[1:]):
            assert hi == lo
        assert sum(hi - lo for lo, hi in plan.blocks) == 17

    def test_more_blocks_than_faults(self):
        plan = FaultBlockPlan(3, 8)
        assert sum(hi - lo for lo, hi in plan.blocks) == 3

    def test_deterministic(self):
        assert FaultBlockPlan(100, 7).blocks == FaultBlockPlan(100, 7).blocks

    def test_validation(self):
        with pytest.raises(ValueError, match="n_faults"):
            FaultBlockPlan(-1, 2)
        with pytest.raises(ValueError, match="n_blocks"):
            FaultBlockPlan(10, 0)


class TestEnvOptIn:
    def test_unset_means_unsharded(self, monkeypatch):
        monkeypatch.delenv(FAULT_BLOCKS_ENV, raising=False)
        assert fault_blocks_from_env() == 0

    def test_integer_value(self, monkeypatch):
        monkeypatch.setenv(FAULT_BLOCKS_ENV, "4")
        assert fault_blocks_from_env() == 4

    def test_garbage_raises(self, monkeypatch):
        monkeypatch.setenv(FAULT_BLOCKS_ENV, "many")
        with pytest.raises(ValueError, match=FAULT_BLOCKS_ENV):
            fault_blocks_from_env()


class TestLevelOneFold:
    def test_block_counts_skip_singleton_classes(self):
        colj = [1, 1, 2, 2, 1]
        partition = FaultPartition.from_groups([[0, 1, 2, 3], [4]])
        counts = block_counts(colj, partition.classes, (0, 5))
        assert counts == {(0, 1): 2, (0, 2): 2}

    def test_fold_is_order_independent(self):
        partials = [{(0, 1): 2}, {(0, 1): 1, (1, 2): 3}, {}]
        assert fold_block_counts(partials) == fold_block_counts(partials[::-1])
        assert fold_block_counts(partials) == {(0, 1): 3, (1, 2): 3}

    def test_scores_from_counts(self):
        # Class 0 has size 4 with 1 member on candidate 2: 1 * 3 = 3.
        assert scores_from_counts({(0, 2): 1}, [4], 3) == [0, 0, 3]

    @pytest.mark.parametrize("n_blocks", [1, 2, 3, 7])
    def test_sharded_scores_equal_unsharded(self, n_blocks):
        table = random_table(20, 5, 3, seed=11, density=0.6)
        partition = FaultPartition(range(20))
        partition.refine(table.interned.cols[0])
        plan = FaultBlockPlan(20, n_blocks)
        for j in range(table.n_tests):
            assert sharded_refine_scores(
                table, j, partition, plan
            ) == _refine_scores(table, j, partition)

    def test_metrics_count_the_fold(self):
        table = random_table(8, 2, 2, seed=3, density=0.7)
        partition = FaultPartition(range(8))
        plan = FaultBlockPlan(8, 4)
        with scoped_registry() as registry:
            sharded_refine_scores(table, 0, partition, plan)
            snapshot = registry.snapshot()
        assert snapshot["counters"]["parallel.block_folds"] == 1
        assert snapshot["counters"]["parallel.fault_blocks"] == plan.n_blocks


class TestShardedProcedure1:
    @pytest.mark.parametrize("backend", ["naive", "packed", "vector"])
    @pytest.mark.parametrize("n_blocks", [2, 5])
    def test_byte_identical_to_backends(self, backend, n_blocks):
        table = random_table(24, 6, 3, seed=7, density=0.5)
        plan = FaultBlockPlan(table.n_faults, n_blocks)
        for restart in range(3):
            order = restart_order(0, restart, table.n_tests)
            want = get_backend(backend).procedure1(table, order, 10, {})
            got = sharded_procedure1(table, order, 10, plan)
            assert got.baselines == want.baselines
            assert got.distinguished == want.distinguished
            assert got.evaluated == want.evaluated
            assert got.cutoffs == want.cutoffs
            assert got.winners == want.winners

    def test_partition_accounts_for_distinguished(self):
        table = random_table(15, 4, 2, seed=5, density=0.6)
        run = sharded_procedure1(
            table, range(table.n_tests), 10, FaultBlockPlan(15, 3)
        )
        assert run.partition.distinguished() == run.distinguished


class TestHierarchicalFold:
    def test_runs_restarts_at_its_own_cursor(self):
        table = random_table(20, 5, 2, seed=2, density=0.8)
        fold = HierarchicalFold(
            table,
            10,
            FaultBlockPlan(20, 3),
            calls=3,
            ceiling=total_pairs(20),
            baselines=[PASS] * table.n_tests,
            distinguished=0,
        )
        first = fold.run_restart(0)
        assert fold.calls_made == 1
        again = sharded_procedure1(
            table,
            restart_order(0, 0, table.n_tests),
            10,
            FaultBlockPlan(20, 3),
        )
        assert first.baselines == again.baselines
        while not fold.done:
            fold.run_restart(0)
        assert fold.calls_made > 1

    @pytest.mark.parametrize("blocks", ["2", "5"])
    def test_env_opted_build_is_byte_identical(self, blocks, monkeypatch):
        table = random_table(30, 6, 3, seed=4, density=0.6)
        with scoped_registry():
            monkeypatch.delenv(FAULT_BLOCKS_ENV, raising=False)
            _, serial = build_sd(table, calls=4, seed=0)
        with scoped_registry() as registry:
            monkeypatch.setenv(FAULT_BLOCKS_ENV, blocks)
            _, sharded = build_sd(table, calls=4, seed=0)
            snapshot = registry.snapshot()
        assert sharded.distinguished_procedure1 == serial.distinguished_procedure1
        assert sharded.distinguished_procedure2 == serial.distinguished_procedure2
        assert sharded.procedure1_calls == serial.procedure1_calls
        assert snapshot["counters"]["parallel.block_folds"] > 0
