"""Property tests for the resolution chain and jobs-invariance.

The chain ``passfail <= s/d(P1) <= s/d(P2) <= full`` is an implementation
invariant (the restart fold is seeded with the all-PASS assignment and
Procedure 2 only keeps strict improvements), so it must hold for *any*
response table — hypothesis hunts for one where it does not.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dictionaries import FullDictionary, PassFailDictionary, total_pairs
from repro.obs import scoped_registry
from tests.util import build_sd, random_table


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    n_faults=st.integers(min_value=2, max_value=14),
    n_tests=st.integers(min_value=1, max_value=7),
    density=st.sampled_from([0.2, 0.5, 0.8]),
)
def test_resolution_chain(seed, n_faults, n_tests, density):
    table = random_table(n_faults, n_tests, 2, seed=seed, density=density)
    passfail = PassFailDictionary(table).distinguished_pairs()
    full = total_pairs(n_faults) - FullDictionary(table).indistinguished_pairs()
    with scoped_registry():
        dictionary, report = build_sd(table, calls=3, seed=seed)
    assert passfail <= report.distinguished_procedure1
    assert report.distinguished_procedure1 <= report.distinguished_procedure2
    assert report.distinguished_procedure2 <= full
    # The reported Procedure 2 count is the dictionary actually returned.
    assert dictionary.indistinguished_pairs() == report.indistinguished_procedure2


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**4),
    n_faults=st.integers(min_value=4, max_value=16),
    n_tests=st.integers(min_value=2, max_value=8),
    jobs=st.sampled_from([2, 3, 4]),
)
def test_procedure2_never_regresses_under_jobs(seed, n_faults, n_tests, jobs):
    """Any jobs value reproduces the serial Procedure 2 result exactly."""
    table = random_table(n_faults, n_tests, 3, seed=seed, density=0.4)
    with scoped_registry():
        _, serial = build_sd(table, calls=3, seed=seed, jobs=1)
    with scoped_registry():
        _, parallel = build_sd(table, calls=3, seed=seed, jobs=jobs)
    assert parallel.distinguished_procedure2 == serial.distinguished_procedure2
    assert parallel.distinguished_procedure1 == serial.distinguished_procedure1
    assert (
        parallel.distinguished_procedure2 >= parallel.distinguished_procedure1
    )
