"""Units for the restart engine: seed streams, the fold, the scheduler,
seed-determinism of ``BuildReport``, and the degenerate-input guards."""

from __future__ import annotations

import pytest

from repro.dictionaries import PassFailDictionary
from repro.obs import scoped_registry
from repro.parallel import (
    RestartFold,
    RestartScheduler,
    derive_restart_seed,
    restart_order,
)
from repro.sim import PASS
from tests.util import build_sd, random_table


class TestSeedStreams:
    def test_restart_zero_is_natural_order(self):
        assert restart_order(123, 0, 6) == [0, 1, 2, 3, 4, 5]

    def test_orders_are_pure_functions(self):
        for seed in (0, 1, 99):
            for restart in (1, 2, 17):
                assert restart_order(seed, restart, 9) == restart_order(
                    seed, restart, 9
                )

    def test_orders_are_permutations(self):
        for restart in range(1, 20):
            assert sorted(restart_order(5, restart, 11)) == list(range(11))

    def test_streams_decorrelated(self):
        orders = {tuple(restart_order(0, r, 12)) for r in range(40)}
        assert len(orders) > 30  # collisions should be rare, not systematic

    def test_child_seeds_differ_across_parents_and_restarts(self):
        seeds = {derive_restart_seed(s, r) for s in range(10) for r in range(10)}
        assert len(seeds) == 100

    def test_negative_restart_rejected(self):
        with pytest.raises(ValueError):
            derive_restart_seed(0, -1)


class TestRestartFold:
    def test_matches_serial_stopping_rule(self):
        fold = RestartFold(calls=2, ceiling=100, baselines=[PASS], distinguished=0)
        fold.consume(10, [PASS])  # improvement
        assert not fold.done and fold.stale == 0
        fold.consume(10, [PASS])  # tie: stale
        fold.consume(9, [PASS])  # worse: stale -> done
        assert fold.done
        assert fold.calls_made == 3
        assert fold.best_distinguished == 10

    def test_ceiling_stops_immediately(self):
        with scoped_registry() as registry:
            fold = RestartFold(
                calls=5, ceiling=7, baselines=[PASS], distinguished=0
            )
            fold.consume(7, [PASS])
            assert fold.done and fold.ceiling_hit
            assert registry.counter("build.ceiling_early_exits").value == 1

    def test_floor_at_ceiling_needs_no_restart(self):
        fold = RestartFold(calls=5, ceiling=3, baselines=[PASS], distinguished=3)
        assert fold.done and fold.calls_made == 0

    def test_rejects_zero_calls(self):
        with pytest.raises(ValueError):
            RestartFold(calls=0, ceiling=1, baselines=[], distinguished=0)


class TestSchedulerValidation:
    def test_rejects_serial_jobs(self):
        table = random_table(5, 3, 2, seed=0)
        with pytest.raises(ValueError):
            RestartScheduler(table, jobs=1)

    def test_build_rejects_bad_arguments(self):
        table = random_table(5, 3, 2, seed=0)
        with pytest.raises(ValueError):
            build_sd(table, calls=0)
        with pytest.raises(ValueError):
            build_sd(table, jobs=0)


class TestDegenerateGuards:
    """Regression: empty test sets / sub-pair fault lists short-circuit."""

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_no_tests(self, jobs):
        table = random_table(10, 0, 2, seed=3)
        dictionary, report = build_sd(table, calls=3, jobs=jobs)
        assert report.procedure1_calls == 0
        assert report.distinguished_procedure1 == 0
        assert report.distinguished_procedure2 == 0
        assert dictionary.baselines == ()
        assert dictionary.indistinguished_pairs() == 45  # C(10, 2)

    @pytest.mark.parametrize("n_faults", [0, 1])
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_too_few_faults(self, n_faults, jobs):
        table = random_table(n_faults, 5, 2, seed=4)
        dictionary, report = build_sd(table, calls=3, jobs=jobs)
        assert report.procedure1_calls == 0
        assert dictionary.baselines == (PASS,) * 5
        assert dictionary.indistinguished_pairs() == 0


class TestSeedDeterminism:
    """Same seed → same BuildReport trajectory, run to run."""

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_report_and_baselines_stable(self, jobs):
        table = random_table(22, 11, 3, seed=31, density=0.3)
        runs = []
        for _ in range(2):
            with scoped_registry():
                dictionary, report = build_sd(
                    table, calls=5, seed=9, jobs=jobs
                )
            runs.append((dictionary, report))
        (dict_a, rep_a), (dict_b, rep_b) = runs
        assert dict_a.baselines == dict_b.baselines
        assert rep_a.procedure1_calls == rep_b.procedure1_calls
        assert rep_a.batches == rep_b.batches
        assert rep_a.distinguished_procedure1 == rep_b.distinguished_procedure1
        assert rep_a.distinguished_procedure2 == rep_b.distinguished_procedure2
        assert [
            dict_a.baseline_vector(j) for j in range(table.n_tests)
        ] == [dict_b.baseline_vector(j) for j in range(table.n_tests)]

    def test_floor_never_below_passfail(self):
        # Seeds (with these dimensions) where the unfloored greedy restart
        # loop used to end strictly below the pass/fail dictionary.
        for seed in (99, 878, 1099, 1541, 1603):
            table = random_table(3 + seed % 10, 1 + seed % 5, 2, seed=seed)
            passfail = PassFailDictionary(table)
            with scoped_registry():
                _, report = build_sd(table, calls=2, seed=seed)
            assert (
                report.distinguished_procedure1
                >= passfail.distinguished_pairs()
            )
