"""Within-restart shard fold: byte-identity for any shard count.

The candidate-scoring histogram is additive over any partition of a
test's detected entries (integer addition commutes), so sharding must be
invisible in the results — these tests hold the fold to *equality* with
the unsharded histogram and the sharded backend to byte-identity with
the serial one.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import scoped_registry
from repro.parallel.shards import (
    CandidateSharder,
    count_block,
    default_min_entries,
    fold_counts,
    shard_slices,
)
from tests.util import random_table

numpy = pytest.importorskip(
    "numpy", reason="the shard fold feeds the vector backend's numpy path"
)


class TestShardSlices:
    @given(
        n=st.integers(min_value=0, max_value=500),
        shards=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=100, deadline=None)
    def test_exact_contiguous_cover(self, n, shards):
        slices = shard_slices(n, shards)
        flat = [x for lo, hi in slices for x in range(lo, hi)]
        assert flat == list(range(n))
        assert all(hi > lo for lo, hi in slices)
        assert len(slices) <= shards or shards < 1

    def test_deterministic(self):
        assert shard_slices(100, 7) == shard_slices(100, 7)

    def test_near_equal(self):
        sizes = [hi - lo for lo, hi in shard_slices(101, 4)]
        assert max(sizes) - min(sizes) <= 1


class TestFold:
    @given(
        data=st.lists(st.integers(min_value=0, max_value=99), max_size=300),
        shards=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_sharded_count_equals_bincount(self, data, shards):
        key = numpy.asarray(data, dtype=numpy.int64)
        partials = [
            count_block(key[lo:hi].tobytes())
            for lo, hi in shard_slices(key.size, shards)
        ]
        folded = fold_counts(partials, 100)
        assert (folded == numpy.bincount(key, minlength=100)).all()

    def test_count_block_without_numpy(self):
        from tests.util import numpy_import_blocked

        key = numpy.asarray([3, 1, 3, 3, 0], dtype=numpy.int64)
        with_np = count_block(key.tobytes())
        with numpy_import_blocked():
            without_np = count_block(key.tobytes())
        assert with_np == without_np == ([0, 1, 3], [1, 1, 3])


class TestCandidateSharder:
    def test_inline_counts_match_bincount(self):
        rng = numpy.random.default_rng(1)
        sharder = CandidateSharder(3, min_entries=0, inline=True)
        for _ in range(10):
            length = int(rng.integers(1, 400))
            key = rng.integers(0, length, size=int(rng.integers(0, 1500)))
            key = key.astype(numpy.int64)
            got = sharder.counts(key, length)
            assert (got == numpy.bincount(key, minlength=length)).all()

    def test_process_pool_counts_match_bincount(self):
        sharder = CandidateSharder(2, min_entries=0)
        try:
            rng = numpy.random.default_rng(2)
            key = rng.integers(0, 700, size=20000).astype(numpy.int64)
            got = sharder.counts(key, 700)
            assert (got == numpy.bincount(key, minlength=700)).all()
        finally:
            sharder.close()

    def test_wants_threshold(self):
        sharder = CandidateSharder(2, min_entries=100, inline=True)
        assert not sharder.wants(99)
        assert sharder.wants(100)

    def test_default_min_entries_env(self, monkeypatch):
        from repro.parallel.shards import DEFAULT_MIN_ENTRIES, SHARD_MIN_ENV

        monkeypatch.delenv(SHARD_MIN_ENV, raising=False)
        assert default_min_entries() == DEFAULT_MIN_ENTRIES
        monkeypatch.setenv(SHARD_MIN_ENV, "123")
        assert default_min_entries() == 123

    def test_metrics_counted(self):
        sharder = CandidateSharder(4, min_entries=0, inline=True)
        key = numpy.arange(50, dtype=numpy.int64)
        with scoped_registry() as registry:
            sharder.counts(key, 50)
            counters = registry.snapshot()["counters"]
        assert counters["parallel.sharded_tests"] == 1
        assert counters["parallel.shard_tasks"] == 4


class TestShardedBackendIdentity:
    def _run_tuple(self, run):
        return (run.baselines, run.distinguished, run.evaluated, run.cutoffs,
                run.winners)

    @given(
        seed=st.integers(min_value=0, max_value=10**4),
        shards=st.sampled_from([2, 3, 5]),
    )
    @settings(max_examples=15, deadline=None)
    def test_sharded_procedure1_is_byte_identical(self, seed, shards):
        from repro.kernels import get_backend
        from repro.kernels.vector import VectorBackend

        table = random_table(40, 10, 3, seed, density=0.4)
        serial = get_backend("vector")
        sharded = VectorBackend(shards=shards, shard_min_entries=0)
        sharded._sharder.inline = True  # keep the property loop cheap
        assert self._run_tuple(
            sharded.procedure1(table, range(10), 10)
        ) == self._run_tuple(serial.procedure1(table, range(10), 10))

    def test_sharded_process_pool_procedure1(self):
        from repro.kernels import get_backend
        from repro.kernels.vector import VectorBackend

        table = random_table(120, 12, 3, 5, density=0.5)
        serial = get_backend("vector")
        sharded = VectorBackend(shards=2, shard_min_entries=0)
        try:
            assert self._run_tuple(
                sharded.procedure1(table, range(12), 10)
            ) == self._run_tuple(serial.procedure1(table, range(12), 10))
        finally:
            sharded._sharder.close()

    def test_shards_env_configures_the_backend(self, monkeypatch):
        from repro.kernels.vector import SHARDS_ENV, VectorBackend

        monkeypatch.setenv(SHARDS_ENV, "3")
        backend = VectorBackend()
        try:
            if backend.uses_numpy:
                assert backend._sharder is not None
                assert backend._sharder.shards == 3
            else:
                assert backend._sharder is None
        finally:
            if backend._sharder is not None:
                backend._sharder.close()

    def test_fallback_mode_ignores_sharding(self):
        from repro.kernels.vector import VectorBackend

        backend = VectorBackend(force_fallback=True, shards=4)
        assert backend._sharder is None
