"""Unit tests for the canonical partition-refinement engine."""

from __future__ import annotations

import pytest

from repro.partition import (
    FaultPartition,
    Partition,
    indistinguished_after_split,
    indistinguished_pairs,
    pairs_within,
    partition_by_key,
    refine,
    rows_indistinguished,
    total_pairs,
)


class TestPairMath:
    def test_pairs_within(self):
        assert [pairs_within(n) for n in range(5)] == [0, 0, 1, 3, 6]

    def test_total_pairs_is_pairs_within(self):
        assert total_pairs(10) == pairs_within(10) == 45

    def test_indistinguished_pairs_sums_classes(self):
        assert indistinguished_pairs([[0, 1, 2], [3, 4], [5]]) == 3 + 1 + 0

    def test_rows_indistinguished_groups_equal_rows(self):
        assert rows_indistinguished(["a", "b", "a", "a", "b"]) == 3 + 1

    def test_indistinguished_after_split(self):
        # One class of 4 with 1 member matching: C(1,2)+C(3,2)-C(4,2) = -3.
        assert indistinguished_after_split([(0, 1)], [4], base=6) == 3

    def test_partition_by_key_preserves_first_seen_order(self):
        groups = partition_by_key([3, 1, 4, 1, 5], key=lambda i: i % 2)
        assert groups == [[3, 1, 1, 5], [4]]

    def test_refine_passes_singletons_through(self):
        refined = refine([[0], [1, 2, 3]], key=lambda i: i % 2)
        assert refined == [[0], [1, 3], [2]]


class TestFaultPartition:
    def test_starts_as_one_class(self):
        partition = FaultPartition(range(4))
        assert partition.n_classes == 1
        assert partition.indistinguished() == 6
        assert partition.distinguished() == 0
        assert not partition.all_singletons

    def test_partition_alias(self):
        assert Partition is FaultPartition

    def test_split_returns_exact_delta(self):
        partition = FaultPartition(range(5))
        assert partition.split([0, 1]) == 2 * 3
        assert partition.indistinguished() == total_pairs(5) - 6
        assert sorted(partition.sizes(), reverse=True) == [3, 2]

    def test_split_noop_when_whole_class_moves(self):
        partition = FaultPartition(range(4))
        assert partition.split([0, 1, 2, 3]) == 0
        assert partition.n_classes == 1

    def test_split_keeps_member_lists_ascending(self):
        # Even when ``inside`` arrives unsorted (the fault-free
        # candidate's member list is concatenated per group, not sorted)
        # — the fault-block shards bisect on ascending member lists.
        partition = FaultPartition(range(8))
        partition.split([6, 1, 5])
        partition.split([5, 2])
        for members in partition.classes:
            assert members == sorted(members)

    def test_refine_with_value_is_binary_split(self):
        column = [0, 1, 0, 1, 1]
        binary = FaultPartition(range(5))
        delta = binary.refine(column, value=1)
        split = FaultPartition(range(5))
        assert delta == split.split([1, 3, 4])
        assert binary.sizes() == split.sizes()

    def test_refine_multiway_splits_all_classes_at_once(self):
        column = [0, 1, 2, 0, 1, 2]
        partition = FaultPartition(range(6))
        delta = partition.refine(column)
        assert partition.n_classes == 3
        assert partition.sizes() == [2, 2, 2]
        assert delta == total_pairs(6) - 3 * pairs_within(2)

    def test_all_singletons_terminal(self):
        partition = FaultPartition(range(3))
        partition.refine([0, 1, 2])
        assert partition.all_singletons
        assert partition.indistinguished() == 0
        assert partition.refine([7, 8, 9]) == 0

    def test_n_classes_ignores_dead_remnants(self):
        partition = FaultPartition(range(3))
        partition.split([0])
        partition.split([1])
        assert partition.n_classes == 3
        assert sum(len(m) for m in partition.classes) == 3

    def test_copy_is_independent(self):
        partition = FaultPartition(range(6))
        partition.split([0, 1])
        clone = partition.copy()
        clone.split([0])
        assert clone.indistinguished() < partition.indistinguished()
        assert partition.sizes() == [4, 2]

    def test_from_groups(self):
        partition = FaultPartition.from_groups([[0, 2], [1], [3, 4, 5]])
        assert partition.n_classes == 3
        assert partition.indistinguished() == 1 + 0 + 3
        assert partition.class_of[2] == partition.class_of[0]

    def test_nontrivial_classes(self):
        partition = FaultPartition.from_groups([[0, 2], [1], [3, 4]])
        assert partition.nontrivial_classes() == [[0, 2], [3, 4]]


class TestSnapshots:
    def test_round_trip(self):
        partition = FaultPartition(range(7))
        partition.refine([0, 1, 0, 2, 1, 0, 2])
        restored = FaultPartition.from_doc(partition.to_doc())
        assert restored.sizes() == partition.sizes()
        assert restored.indistinguished() == partition.indistinguished()
        assert sorted(map(sorted, restored.classes)) == sorted(
            sorted(m) for m in partition.classes if m
        )

    def test_doc_is_independent_of_split_history(self):
        # Same final classes through different refinement orders.
        a = FaultPartition(range(6))
        a.split([0, 1])
        a.split([4, 5])
        b = FaultPartition(range(6))
        b.split([2, 3, 4, 5])
        b.split([4, 5])
        assert a.to_doc() == b.to_doc()

    def test_doc_version_pinned(self):
        assert FaultPartition(range(2)).to_doc()["version"] == 1

    def test_from_doc_rejects_unknown_version(self):
        with pytest.raises(ValueError, match="version"):
            FaultPartition.from_doc({"version": 99, "indices": [], "labels": []})

    def test_from_doc_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="labels"):
            FaultPartition.from_doc(
                {"version": 1, "indices": [0, 1], "labels": [0]}
            )

    def test_from_doc_rejects_out_of_order_labels(self):
        with pytest.raises(ValueError, match="first-use order"):
            FaultPartition.from_doc(
                {"version": 1, "indices": [0, 1, 2], "labels": [0, 2, 1]}
            )
