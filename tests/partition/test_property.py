"""Hypothesis property suite: incremental pair deltas vs brute force.

:class:`~repro.partition.FaultPartition` maintains its indistinguished
count *incrementally* from class sizes; the scale gate depends on those
deltas being exact.  :class:`~repro.partition.reference.MaterializedPairPartition`
keeps the explicit pair set and self-checks every delta against it, so
running arbitrary refinement streams through both (and through direct
recomputation) is a proof by search that the O(F) arithmetic equals the
O(F^2) semantics.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition import FaultPartition, rows_indistinguished, total_pairs
from repro.partition.reference import MaterializedPairPartition
from tests.util import random_table


@st.composite
def refinement_streams(draw):
    """A fault count plus a stream of refinement columns over it."""
    n = draw(st.integers(min_value=1, max_value=24))
    n_columns = draw(st.integers(min_value=0, max_value=6))
    columns = [
        draw(
            st.lists(
                st.integers(min_value=0, max_value=3), min_size=n, max_size=n
            )
        )
        for _ in range(n_columns)
    ]
    return n, columns


@settings(max_examples=60, deadline=None)
@given(refinement_streams())
def test_refine_deltas_match_materialized_pairs(stream):
    """Every multiway refine delta equals the pair-set recomputation."""
    n, columns = stream
    fast = FaultPartition(range(n))
    oracle = MaterializedPairPartition(range(n))
    for column in columns:
        before = len(oracle.pairs)
        delta = fast.refine(column)
        # The oracle refines through binary splits per distinct value;
        # the union of those splits is the multiway refine.
        for value in sorted(set(column)):
            oracle.split([i for i in range(n) if column[i] == value])
        assert delta == before - len(oracle.pairs)
        assert fast.indistinguished() == oracle.indistinguished()
        assert fast.sizes() == oracle.sizes()
    # Terminal cross-check: grouping faults by their full column tuple
    # reproduces the same indistinguished count from scratch.
    rows = [tuple(column[i] for column in columns) for i in range(n)]
    assert fast.indistinguished() == rows_indistinguished(rows)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    n_faults=st.integers(min_value=2, max_value=16),
    n_tests=st.integers(min_value=1, max_value=6),
    density=st.sampled_from([0.2, 0.5, 0.8]),
)
def test_refine_over_response_columns(seed, n_faults, n_tests, density):
    """Refining by a table's interned columns equals row grouping."""
    table = random_table(n_faults, n_tests, 2, seed=seed, density=density)
    interned = table.interned
    partition = FaultPartition(range(n_faults))
    for j in range(n_tests):
        partition.refine(interned.cols[j])
    rows = [
        tuple(interned.cols[j][i] for j in range(n_tests))
        for i in range(n_faults)
    ]
    assert partition.indistinguished() == rows_indistinguished(rows)
    assert partition.distinguished() == total_pairs(n_faults) - rows_indistinguished(
        rows
    )


@settings(max_examples=40, deadline=None)
@given(refinement_streams())
def test_snapshot_round_trip_under_arbitrary_streams(stream):
    """to_doc/from_doc survives any refinement history, canonically."""
    n, columns = stream
    partition = FaultPartition(range(n))
    for column in columns:
        partition.refine(column)
    doc = partition.to_doc()
    restored = FaultPartition.from_doc(doc)
    assert restored.to_doc() == doc
    assert restored.indistinguished() == partition.indistinguished()
    assert restored.sizes() == partition.sizes()
