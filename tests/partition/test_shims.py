"""Deprecation shims for helpers consolidated into :mod:`repro.partition`."""

from __future__ import annotations

import pytest

import repro.dictionaries.samediff as samediff
import repro.partition as partition


class TestSamediffMovedHelpers:
    def test_partition_indistinguished_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="repro.partition"):
            moved = samediff._partition_indistinguished
        assert moved is partition.rows_indistinguished

    def test_indistinguished_with_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="repro.partition"):
            moved = samediff._indistinguished_with
        assert moved is partition.indistinguished_after_split

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            samediff.does_not_exist


class TestResolutionShimExports:
    """The old ``dictionaries.resolution`` names resolve to the new homes."""

    @pytest.mark.parametrize(
        "name",
        [
            "Partition",
            "pairs_within",
            "indistinguished_pairs",
            "total_pairs",
            "partition_by_key",
            "refine",
        ],
    )
    def test_name_delegates(self, name):
        import repro.dictionaries.resolution as resolution

        with pytest.warns(DeprecationWarning, match="repro.partition"):
            shimmed = getattr(resolution, name)
        assert shimmed is getattr(partition, name)
