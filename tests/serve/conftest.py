"""Shared fixtures for the serve-layer suite: packed synthetic artifacts.

Everything here is circuit-free — artifacts are packed from synthetic
``ResponseTable`` values (``tests.util.random_table``), which keeps the
pool/server/session tests fast and makes "no circuit files present" true
by construction.
"""

from __future__ import annotations

import pytest

from repro.api import DictionaryConfig, build
from repro.store import save_artifact
from tests.util import random_table


def pack_random_artifact(
    path, *, n_faults=24, n_tests=10, n_outputs=3, seed=0, calls=3
):
    """Build a same/different dictionary over a random table and pack it."""
    table = random_table(n_faults, n_tests, n_outputs, seed=seed)
    built = build(table, config=DictionaryConfig(seed=seed, calls1=calls))
    save_artifact(built, path)
    return built


@pytest.fixture(scope="session")
def artifact_a(tmp_path_factory):
    path = tmp_path_factory.mktemp("serve") / "a.rfd"
    built = pack_random_artifact(path, seed=1)
    return path, built


@pytest.fixture(scope="session")
def artifact_b(tmp_path_factory):
    path = tmp_path_factory.mktemp("serve") / "b.rfd"
    built = pack_random_artifact(path, seed=2)
    return path, built


@pytest.fixture(scope="session")
def artifact_c(tmp_path_factory):
    path = tmp_path_factory.mktemp("serve") / "c.rfd"
    built = pack_random_artifact(path, seed=3)
    return path, built
