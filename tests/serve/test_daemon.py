"""The asyncio daemon over a real localhost socket.

Every test here talks to a :class:`DiagnosisDaemon` bound to
``127.0.0.1:<kernel-assigned>`` through plain ``http.client`` (or a raw
socket for the frame-level failure cases) — the same wire a production
client would use.  Slow/blocked work is injected through the pool's
``loader`` hook, never with real sleeps on the assertion path.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time

import pytest

from repro.obs import scoped_registry
from repro.serve import ArtifactPool, DiagnosisServer, ServeConfig
from repro.serve.daemon import DaemonConfig, DiagnosisDaemon, start_in_thread
from repro.serve.pool import _default_loader
from repro.serve.schemas import SCHEMA_VERSION


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------
@pytest.fixture()
def daemon_factory():
    """Start daemons on background threads; stop them all at teardown."""
    handles = []

    def start(config=None, *, server=None, **config_kwargs):
        if config is None:
            config = DaemonConfig(port=0, **config_kwargs)
        handle = start_in_thread(config, server=server)
        handles.append(handle)
        return handle

    yield start
    for handle in handles:
        handle.stop()


def call(handle, method, path, body=None, *, headers=None, conn=None):
    """One HTTP exchange; returns ``(status, decoded_body)``."""
    own = conn is None
    if own:
        conn = http.client.HTTPConnection(handle.host, handle.port, timeout=10)
    data = json.dumps(body).encode() if body is not None else None
    conn.request(method, path, body=data, headers=headers or {})
    response = conn.getresponse()
    document = json.loads(response.read().decode())
    if own:
        conn.close()
    return response.status, document


def wait_until(predicate, timeout=5.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class GatedLoader:
    """A loader that parks loads on an event until released.

    With ``only=`` set, just that path gates (other artifacts load
    normally — needed when a test must make progress on a second
    artifact while the first is parked, since the pool's single-flight
    load would otherwise park every same-hash request too).
    """

    def __init__(self, only=None):
        self.gate = threading.Event()
        self.entered = threading.Event()
        self.only = str(only) if only is not None else None

    def __call__(self, path):
        if self.only is None or str(path) == self.only:
            self.entered.set()
            assert self.gate.wait(10), "gated loader was never released"
        return _default_loader(path)


def gated_server(artifact_path, loader, **serve_kwargs):
    config = ServeConfig(**serve_kwargs)
    pool = ArtifactPool(config.pool_size, loader=loader)
    return DiagnosisServer(
        config, default_artifact=str(artifact_path), pool=pool
    )


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_start_ready_stop(self, daemon_factory, artifact_a):
        handle = daemon_factory(default_artifact=str(artifact_a[0]))
        assert handle.daemon.state == "ready"
        status, doc = call(handle, "GET", "/readyz")
        assert status == 200 and doc["state"] == "ready"
        handle.stop()
        assert handle.daemon.state == "stopped"

    def test_stop_is_idempotent(self, daemon_factory, artifact_a):
        handle = daemon_factory(default_artifact=str(artifact_a[0]))
        handle.stop()
        handle.stop()
        assert handle.daemon.state == "stopped"

    def test_shutdown_drains_inflight_work(self, daemon_factory, artifact_a):
        """A request admitted before stop() gets its full 200 response."""
        loader = GatedLoader()
        server = gated_server(artifact_a[0], loader, workers=2)
        handle = daemon_factory(
            DaemonConfig(port=0, drain_grace_s=10.0), server=server
        )

        results = []

        def slow_request():
            results.append(call(
                handle, "POST", "/v1/diagnose", {"id": "r", "fault": "x"}
            ))

        thread = threading.Thread(target=slow_request)
        thread.start()
        assert loader.entered.wait(5), "request never reached the loader"

        stopper = threading.Thread(target=handle.stop)
        stopper.start()
        assert wait_until(lambda: handle.daemon.state == "draining")
        # Drain must wait for the parked request, not abandon it.
        assert not results
        loader.gate.set()
        stopper.join(10)
        thread.join(10)
        assert handle.daemon.state == "stopped"
        status, doc = results[0]
        # The fault name is bogus, so the *diagnosis* degrades — but the
        # HTTP exchange itself completed through the drain.
        assert status == 200 and doc["code"] == "unmodeled_response"

    def test_new_work_is_rejected_while_draining(
        self, daemon_factory, artifact_a
    ):
        """The listener closes on drain; work arriving on an existing
        keep-alive connection is answered ``503 shutting_down``."""
        loader = GatedLoader()
        server = gated_server(artifact_a[0], loader, workers=2)
        handle = daemon_factory(
            DaemonConfig(port=0, drain_grace_s=10.0), server=server
        )
        # Open the keep-alive connection while the daemon still accepts.
        conn = http.client.HTTPConnection(handle.host, handle.port, timeout=10)
        status, _ = call(handle, "GET", "/healthz", conn=conn)
        assert status == 200

        threading.Thread(target=lambda: call(
            handle, "POST", "/v1/diagnose", {"id": "r", "fault": "x"}
        )).start()
        assert loader.entered.wait(5)
        stopper = threading.Thread(target=handle.stop)
        stopper.start()
        assert wait_until(lambda: handle.daemon.state == "draining")
        with scoped_registry() as registry:
            status, doc = call(
                handle, "POST", "/v1/diagnose",
                {"id": "late", "fault": "x"}, conn=conn,
            )
            assert status == 503
            assert doc["code"] == "shutting_down"
            rejected = registry.counters[
                "serve.daemon.rejected_draining"].value
        assert rejected == 1
        status, doc = call(handle, "GET", "/readyz", conn=conn)
        assert status == 503 and doc["code"] == "shutting_down"
        # Fresh TCP connections are refused outright: the listener is gone.
        with pytest.raises(OSError):
            call(handle, "GET", "/healthz")
        conn.close()
        loader.gate.set()
        stopper.join(10)


# ----------------------------------------------------------------------
# framing failures
# ----------------------------------------------------------------------
class TestFraming:
    def raw_exchange(self, handle, payload):
        with socket.create_connection(
            (handle.host, handle.port), timeout=10
        ) as sock:
            sock.sendall(payload)
            sock.shutdown(socket.SHUT_WR)
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        raw = b"".join(chunks)
        head, _, body = raw.partition(b"\r\n\r\n")
        status = int(head.split(b" ", 2)[1])
        return status, json.loads(body.decode()), head

    def test_malformed_request_line(self, daemon_factory, artifact_a):
        handle = daemon_factory(default_artifact=str(artifact_a[0]))
        with scoped_registry() as registry:
            status, doc, head = self.raw_exchange(
                handle, b"NOT-HTTP-AT-ALL\r\n\r\n"
            )
            frames = registry.counters["serve.daemon.bad_frames"].value
        assert status == 400
        assert doc["code"] == "malformed_frame"
        assert b"Connection: close" in head
        assert frames == 1

    def test_malformed_body_json_keeps_the_connection(
        self, daemon_factory, artifact_a
    ):
        handle = daemon_factory(default_artifact=str(artifact_a[0]))
        conn = http.client.HTTPConnection(handle.host, handle.port, timeout=10)
        conn.request("POST", "/v1/diagnose", body=b"{nope",
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        doc = json.loads(response.read().decode())
        assert response.status == 400
        assert doc["code"] == "malformed_frame"
        # Framing stayed intact, so the same connection serves more.
        status, doc = call(handle, "GET", "/healthz", conn=conn)
        assert status == 200
        conn.close()

    def test_oversized_body_is_rejected_before_buffering(
        self, daemon_factory, artifact_a
    ):
        handle = daemon_factory(
            DaemonConfig(
                port=0, default_artifact=str(artifact_a[0]),
                max_body_bytes=1024,
            )
        )
        big = b"x" * 4096
        status, doc, _ = self.raw_exchange(
            handle,
            b"POST /v1/diagnose HTTP/1.1\r\nHost: t\r\n"
            b"Content-Length: %d\r\n\r\n%s" % (len(big), big),
        )
        assert status == 413
        assert doc["code"] == "oversized_body"

    def test_oversized_header_is_rejected(self, daemon_factory, artifact_a):
        handle = daemon_factory(
            DaemonConfig(
                port=0, default_artifact=str(artifact_a[0]),
                max_header_bytes=512,
            )
        )
        status, doc, _ = self.raw_exchange(
            handle,
            b"GET /healthz HTTP/1.1\r\nX-Pad: " + b"y" * 2048 + b"\r\n\r\n",
        )
        assert status == 431
        assert doc["code"] == "oversized_header"

    def test_chunked_transfer_encoding_is_not_implemented(
        self, daemon_factory, artifact_a
    ):
        handle = daemon_factory(default_artifact=str(artifact_a[0]))
        status, doc, _ = self.raw_exchange(
            handle,
            b"POST /v1/diagnose HTTP/1.1\r\nHost: t\r\n"
            b"Transfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
        )
        assert status == 501
        assert doc["code"] == "unsupported_transfer_encoding"


# ----------------------------------------------------------------------
# admission control and quotas
# ----------------------------------------------------------------------
class TestAdmission:
    def saturate(self, handle, loader, count, tenant=None):
        """Park ``count`` requests inside the gated loader."""
        threads = []
        headers = {"X-Tenant": tenant} if tenant else {}
        for i in range(count):
            thread = threading.Thread(target=lambda i=i: call(
                handle, "POST", "/v1/diagnose",
                {"id": f"parked-{i}", "fault": "x"}, headers=headers,
            ))
            thread.start()
            threads.append(thread)
        return threads

    def test_saturated_pool_answers_429_overloaded(
        self, daemon_factory, artifact_a
    ):
        loader = GatedLoader()
        server = gated_server(artifact_a[0], loader, workers=2)
        handle = daemon_factory(
            DaemonConfig(port=0, max_inflight=1), server=server
        )
        threads = self.saturate(handle, loader, 1)
        assert loader.entered.wait(5)
        assert wait_until(
            lambda: handle.daemon._admission.inflight == 1
        )
        with scoped_registry() as registry:
            status, doc = call(
                handle, "POST", "/v1/diagnose", {"id": "over", "fault": "x"}
            )
            assert status == 429
            assert doc["code"] == "overloaded"
            assert "max_inflight=1" in doc["detail"]
            rejected = registry.counters[
                "serve.daemon.rejected_overload"].value
        assert rejected == 1
        # Health stays served from the loop even at saturation.
        status, doc = call(handle, "GET", "/healthz")
        assert status == 200 and doc["inflight"] == 1
        loader.gate.set()
        for thread in threads:
            thread.join(10)
        # Capacity freed: the same request is admitted now.
        status, doc = call(
            handle, "POST", "/v1/diagnose", {"id": "after", "fault": "x"}
        )
        assert status == 200

    def test_tenant_quota_rejects_only_that_tenant(
        self, daemon_factory, artifact_a, artifact_b
    ):
        loader = GatedLoader(only=artifact_a[0])
        server = gated_server(artifact_a[0], loader, workers=4)
        handle = daemon_factory(
            DaemonConfig(
                port=0, max_inflight=8, tenant_quotas=(("acme", 1),),
            ),
            server=server,
        )
        threads = self.saturate(handle, loader, 1, tenant="acme")
        assert loader.entered.wait(5)
        assert wait_until(
            lambda: handle.daemon._admission.per_tenant.get("acme") == 1
        )
        status, doc = call(
            handle, "POST", "/v1/diagnose", {"id": "q", "fault": "x"},
            headers={"X-Tenant": "acme"},
        )
        assert status == 429
        assert doc["code"] == "quota_exceeded"
        assert "acme" in doc["detail"]
        # Another tenant (and the untenanted) still get in — against a
        # second artifact, so the parked load cannot stall them.
        status, _ = call(
            handle, "POST", "/v1/diagnose",
            {"id": "other", "fault": "x", "tenant": "globex",
             "artifact": str(artifact_b[0])},
        )
        assert status == 200
        status, _ = call(
            handle, "POST", "/v1/diagnose",
            {"id": "anon", "fault": "x", "artifact": str(artifact_b[0])},
        )
        assert status == 200
        loader.gate.set()
        for thread in threads:
            thread.join(10)

    def test_default_tenant_quota_applies_to_unlisted_tenants(
        self, daemon_factory, artifact_a
    ):
        loader = GatedLoader()
        server = gated_server(artifact_a[0], loader, workers=4)
        handle = daemon_factory(
            DaemonConfig(port=0, max_inflight=8, default_tenant_quota=1),
            server=server,
        )
        threads = self.saturate(handle, loader, 1, tenant="newcomer")
        assert loader.entered.wait(5)
        assert wait_until(
            lambda: handle.daemon._admission.per_tenant.get("newcomer") == 1
        )
        status, doc = call(
            handle, "POST", "/v1/diagnose", {"id": "q", "fault": "x"},
            headers={"X-Tenant": "newcomer"},
        )
        assert status == 429 and doc["code"] == "quota_exceeded"
        loader.gate.set()
        for thread in threads:
            thread.join(10)

    def test_batch_occupies_one_slot_and_bounds_size(
        self, daemon_factory, artifact_a
    ):
        handle = daemon_factory(
            DaemonConfig(
                port=0, default_artifact=str(artifact_a[0]), max_batch=2,
            )
        )
        status, doc = call(
            handle, "POST", "/v1/diagnose/batch",
            {"requests": [{"id": str(i), "fault": "x"} for i in range(3)]},
        )
        assert status == 413
        assert doc["code"] == "batch_too_large"
        status, doc = call(
            handle, "POST", "/v1/diagnose/batch",
            {"requests": [{"id": "a", "fault": "x"}, {"bogus": 1}]},
        )
        assert status == 200
        assert [r["code"] for r in doc["results"]] == [
            "unmodeled_response", "bad_request",
        ]


# ----------------------------------------------------------------------
# the diagnosis protocol over the wire
# ----------------------------------------------------------------------
class TestProtocol:
    def test_ok_diagnosis_round_trip(self, daemon_factory, artifact_a):
        path, built = artifact_a
        handle = daemon_factory(default_artifact=str(path))
        fault = str(built.table.faults[3])
        status, doc = call(
            handle, "POST", "/v1/diagnose", {"id": "chip", "fault": fault}
        )
        assert status == 200
        assert doc["schema"] == SCHEMA_VERSION
        assert doc["code"] == "ok"
        assert fault in doc["exact"]

    def test_schema_version_mismatch_is_a_reasoned_200(
        self, daemon_factory, artifact_a
    ):
        handle = daemon_factory(default_artifact=str(artifact_a[0]))
        status, doc = call(
            handle, "POST", "/v1/diagnose",
            {"schema": 9, "id": "future", "fault": "x"},
        )
        assert status == 200
        assert doc["code"] == "bad_request"
        assert "schema" in doc["detail"]
        assert doc["id"] == "future"

    def test_degraded_outcome_carries_the_policy_block(
        self, daemon_factory, tmp_path
    ):
        handle = daemon_factory(
            DaemonConfig(
                port=0,
                serve=ServeConfig(max_retries=1, retry_backoff_ms=1.0),
            )
        )
        missing = tmp_path / "nowhere.rfd"
        status, doc = call(
            handle, "POST", "/v1/diagnose",
            {"id": "gone", "fault": "x", "artifact": str(missing)},
        )
        assert status == 200
        assert doc["code"] == "artifact_error"
        assert doc["policy"] == {
            "deadline_ms": None, "max_retries": 1, "retry_backoff_ms": 1.0,
        }

    def test_unknown_route_and_method(self, daemon_factory, artifact_a):
        handle = daemon_factory(default_artifact=str(artifact_a[0]))
        status, doc = call(handle, "GET", "/v2/diagnose")
        assert status == 404 and doc["code"] == "not_found"
        status, doc = call(handle, "GET", "/v1/diagnose")
        assert status == 405 and doc["code"] == "method_not_allowed"

    def test_metrics_endpoint_snapshots_the_registry(
        self, daemon_factory, artifact_a
    ):
        path, built = artifact_a
        handle = daemon_factory(default_artifact=str(path))
        call(handle, "POST", "/v1/diagnose",
             {"id": "c", "fault": str(built.table.faults[0])})
        status, doc = call(handle, "GET", "/metrics")
        assert status == 200
        metrics = doc["metrics"]
        assert metrics["counters"]["serve.daemon.http_requests"] >= 1
        assert metrics["counters"]["serve.outcomes.ok"] >= 1


# ----------------------------------------------------------------------
# sessions over the socket
# ----------------------------------------------------------------------
class TestSessions:
    def test_session_narrows_like_the_inprocess_session(
        self, daemon_factory, artifact_a
    ):
        from repro.serve import DiagnosisSession

        path, built = artifact_a
        handle = daemon_factory(default_artifact=str(path))
        table = built.table
        observed = [tuple(table.full_row(5)[j]) for j in range(table.n_tests)]

        reference = DiagnosisSession(built.dictionary)
        for j in range(4):
            reference.observe(j, observed[j])

        status, doc = call(handle, "POST", "/v1/sessions", {})
        assert status == 201
        session_id = doc["session"]
        assert doc["report"]["candidates"] == table.n_faults

        status, doc = call(
            handle, "POST", f"/v1/sessions/{session_id}",
            {"observations": [[j, list(observed[j])] for j in range(4)],
             "suggest": True},
        )
        assert status == 200
        assert doc["report"]["narrowing"] == [
            update.after for update in reference.history
        ]
        assert doc["candidates"] == [
            str(fault) for fault in reference.candidate_faults()
        ][:10]
        assert doc["suggested_test"] == reference.suggest_next_test()

        status, doc = call(handle, "DELETE", f"/v1/sessions/{session_id}")
        assert status == 200
        assert doc["report"]["observations"] == 4
        status, doc = call(handle, "DELETE", f"/v1/sessions/{session_id}")
        assert status == 404 and doc["code"] == "unknown_session"

    def test_advance_on_unknown_session_is_404(
        self, daemon_factory, artifact_a
    ):
        handle = daemon_factory(default_artifact=str(artifact_a[0]))
        status, doc = call(
            handle, "POST", "/v1/sessions/nope", {"suggest": True}
        )
        assert status == 404 and doc["code"] == "unknown_session"

    def test_open_sessions_gauge_tracks(self, daemon_factory, artifact_a):
        handle = daemon_factory(default_artifact=str(artifact_a[0]))
        with scoped_registry() as registry:
            _, doc = call(handle, "POST", "/v1/sessions", {})
            assert registry.gauges["serve.daemon.open_sessions"].value == 1
            call(handle, "DELETE", f"/v1/sessions/{doc['session']}")
            assert registry.gauges["serve.daemon.open_sessions"].value == 0


# ----------------------------------------------------------------------
# hot artifact registration
# ----------------------------------------------------------------------
class TestArtifacts:
    def test_register_by_path_pins_against_lru_pressure(
        self, daemon_factory, artifact_a, artifact_b, artifact_c
    ):
        server = DiagnosisServer(
            ServeConfig(pool_size=1), default_artifact=str(artifact_a[0])
        )
        handle = daemon_factory(DaemonConfig(port=0), server=server)
        status, doc = call(
            handle, "POST", "/v1/artifacts", {"path": str(artifact_a[0])}
        )
        assert status == 201 and doc["pinned"]
        pinned_hash = doc["content_hash"]
        # Traffic against two other artifacts would evict an unpinned
        # entry from a capacity-1 pool; the pinned one must survive.
        for path, built in (artifact_b, artifact_c):
            status, _ = call(
                handle, "POST", "/v1/diagnose",
                {"id": "t", "fault": str(built.table.faults[0]),
                 "artifact": str(path)},
            )
            assert status == 200
        status, doc = call(handle, "GET", "/v1/artifacts")
        assert pinned_hash in doc["pinned"]
        assert pinned_hash in [a["content_hash"] for a in doc["artifacts"]]

    def test_upload_registers_and_serves(self, daemon_factory, artifact_a, tmp_path):
        path, built = artifact_a
        handle = daemon_factory(
            DaemonConfig(port=0, spool_dir=str(tmp_path / "spool"))
        )
        payload = path.read_bytes()
        conn = http.client.HTTPConnection(handle.host, handle.port, timeout=10)
        conn.request(
            "POST", "/v1/artifacts", body=payload,
            headers={"Content-Type": "application/octet-stream",
                     "X-Artifact-Name": "uploaded"},
        )
        response = conn.getresponse()
        doc = json.loads(response.read().decode())
        conn.close()
        assert response.status == 201
        assert doc["faults"] == built.table.n_faults
        uploaded_path = doc["path"]
        assert "uploaded" in uploaded_path
        # Serve against the registered copy, by its spooled path.
        fault = str(built.table.faults[2])
        status, result = call(
            handle, "POST", "/v1/diagnose",
            {"id": "up", "fault": fault, "artifact": uploaded_path},
        )
        assert status == 200 and result["code"] == "ok"
        assert fault in result["exact"]

    def test_evict_frees_and_404s_when_absent(
        self, daemon_factory, artifact_a
    ):
        handle = daemon_factory(DaemonConfig(port=0))
        status, doc = call(
            handle, "POST", "/v1/artifacts", {"path": str(artifact_a[0])}
        )
        content_hash = doc["content_hash"]
        status, doc = call(
            handle, "DELETE", f"/v1/artifacts/{content_hash}"
        )
        assert status == 200 and doc["evicted"]
        status, doc = call(
            handle, "DELETE", f"/v1/artifacts/{content_hash}"
        )
        assert status == 404 and doc["code"] == "not_found"

    def test_register_unloadable_path_is_422(self, daemon_factory, tmp_path):
        bogus = tmp_path / "not-an-artifact.rfd"
        bogus.write_bytes(b"junk")
        handle = daemon_factory(DaemonConfig(port=0))
        status, doc = call(
            handle, "POST", "/v1/artifacts", {"path": str(bogus)}
        )
        assert status == 422 and doc["code"] == "artifact_error"
