"""Batch outcomes must not depend on worker count, order, or pool churn."""

from __future__ import annotations

import json

from repro.obs import scoped_registry
from repro.serve import ArtifactPool, DiagnosisServer, ServeConfig
from repro.store import ArtifactFormatError, load_artifact


def build_batch(artifacts):
    """A mixed batch spanning three artifacts and every request flavour."""
    lines = []
    for round_index in range(3):
        for letter, (path, built) in artifacts.items():
            table = built.table
            fault_index = (round_index * 7 + ord(letter)) % table.n_faults
            lines.append(json.dumps({
                "id": f"{letter}-fault-{round_index}",
                "fault": f"f{fault_index}/sa0",
                "artifact": str(path),
            }))
            lines.append(json.dumps({
                "id": f"{letter}-observed-{round_index}",
                "observed": [list(sig) for sig in table.full_row(fault_index)],
                "artifact": str(path),
            }))
            row = table.full_row(fault_index)
            lines.append(json.dumps({
                "id": f"{letter}-session-{round_index}",
                "observations": [[j, list(row[j])] for j in range(4)],
                "artifact": str(path),
            }))
    # Degraded flavours ride along: they must not perturb their neighbours.
    lines.append('{"id": "bad", "fault": 3}')
    lines.append(json.dumps({
        "id": "unmodeled", "observed": [[0]],
        "artifact": str(next(iter(artifacts.values()))[0]),
    }))
    return lines


def canonical(outcomes):
    """Outcome dicts minus wall-clock noise."""
    docs = []
    for outcome in outcomes:
        doc = outcome.as_dict()
        doc.pop("elapsed_seconds")
        docs.append(doc)
    return docs


class TestWorkerCountInvariance:
    def test_same_batch_same_outcomes_any_worker_count(
        self, artifact_a, artifact_b, artifact_c
    ):
        artifacts = {"a": artifact_a, "b": artifact_b, "c": artifact_c}
        lines = build_batch(artifacts)
        baseline = None
        for workers in (1, 2, 8):
            with scoped_registry():
                server = DiagnosisServer(
                    ServeConfig(workers=workers, pool_size=2)
                )
                outcomes = canonical(server.serve_jsonl(lines))
            if baseline is None:
                baseline = outcomes
            else:
                assert outcomes == baseline, f"workers={workers} diverged"
        assert baseline is not None
        assert {doc["code"] for doc in baseline} == {
            "ok", "bad_request", "unmodeled_response",
        }

    def test_repeat_runs_are_stable_under_pool_churn(
        self, artifact_a, artifact_b, artifact_c
    ):
        # pool_size=1 forces an eviction on nearly every artifact switch;
        # reloads must not change a single outcome.
        artifacts = {"a": artifact_a, "b": artifact_b, "c": artifact_c}
        lines = build_batch(artifacts)
        runs = []
        for _ in range(2):
            with scoped_registry() as registry:
                server = DiagnosisServer(
                    ServeConfig(workers=4, pool_size=1)
                )
                runs.append(canonical(server.serve_jsonl(lines)))
                assert registry.counters["serve.pool_evictions"].value > 0
        assert runs[0] == runs[1]

    def test_flaky_loader_retries_do_not_change_results(self, artifact_a):
        # A loader that fails every other call: retried requests must end
        # with the same diagnosis as an unfaulted server.
        path, built = artifact_a
        lines = [
            json.dumps({"id": f"r{i}", "fault": f"f{i}/sa0"})
            for i in range(6)
        ]

        with scoped_registry():
            clean = DiagnosisServer(
                ServeConfig(workers=1),
                default_artifact=str(path),
            )
            expected = canonical(clean.serve_jsonl(lines))

        state = {"calls": 0}

        def flaky_loader(p):
            state["calls"] += 1
            if state["calls"] % 2 == 1:
                raise ArtifactFormatError("every other call flakes")
            return load_artifact(p)

        with scoped_registry():
            pool = ArtifactPool(1, loader=flaky_loader)
            flaky = DiagnosisServer(
                ServeConfig(workers=1, pool_size=1, max_retries=2,
                            retry_backoff_ms=0.001),
                default_artifact=str(path),
                pool=pool,
            )
            # Evict between requests so every request reloads through the
            # flaky path.
            got = []
            for line in lines:
                got.extend(flaky.serve_jsonl([line]))
                pool.clear()
        got = canonical(got)
        for want, have in zip(expected, got):
            assert have["code"] == "ok"
            assert have["exact"] == want["exact"]
            assert have["ranked"] == want["ranked"]
            assert have["attempts"] == 2  # one flake, one success
