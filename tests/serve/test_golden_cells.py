"""Eviction/reload correctness against the golden Table-6 cells.

The golden fixture (``tests/experiments/golden/table6_small.json``) pins
three (circuit, test-type) cells at ``seed=0, calls=5``.  Here those same
cells are packed into artifacts and served through a capacity-1 pool, so
every artifact switch evicts and every revisit reloads from bytes — and
every outcome must equal what a directly-constructed ``Diagnoser`` on the
freshly-built dictionary produces, every time.
"""

from __future__ import annotations

import pytest

from repro.api import DictionaryConfig, build
from repro.diagnosis.engine import Diagnoser
from repro.experiments.table6 import response_table_for
from repro.obs import scoped_registry
from repro.serve import DiagnosisRequest, DiagnosisServer, ServeConfig
from repro.store import save_artifact
from tests.experiments.test_golden import CALLS, CELLS, SEED


@pytest.fixture(scope="module")
def golden_artifacts(tmp_path_factory):
    """The three golden cells, built once and packed to disk."""
    root = tmp_path_factory.mktemp("golden-serve")
    cells = {}
    for circuit, test_type in CELLS:
        _, table = response_table_for(circuit, test_type, SEED)
        built = build(table, config=DictionaryConfig(seed=SEED, calls1=CALLS))
        path = root / f"{circuit}-{test_type}.rfd"
        save_artifact(built, path)
        cells[(circuit, test_type)] = (path, built)
    return cells


def sample_fault_names(built, count=4):
    faults = built.table.faults
    step = max(1, len(faults) // count)
    return [str(faults[i]) for i in range(0, len(faults), step)][:count]


def test_capacity_one_pool_serves_golden_cells_bit_for_bit(golden_artifacts):
    # Direct, pool-free reference results from the in-memory builds.
    reference = {}
    for cell, (path, built) in golden_artifacts.items():
        diagnoser = Diagnoser(built.dictionary)
        for name in sample_fault_names(built):
            index = [str(f) for f in built.table.faults].index(name)
            observed = list(built.table.full_row(index))
            diagnosis = diagnoser.diagnose(observed, limit=10)
            reference[(cell, name)] = (
                [str(f) for f in diagnosis.exact],
                [(str(f), score) for f, score in diagnosis.ranked],
            )

    # Round-robin over the cells with a capacity-1 pool: every request
    # after the first switch reloads its artifact from disk.
    requests = []
    for round_index in range(2):
        for cell, (path, built) in golden_artifacts.items():
            for name in sample_fault_names(built):
                requests.append((cell, name, DiagnosisRequest(
                    request_id=f"{cell[0]}/{cell[1]}/{name}/{round_index}",
                    fault=name,
                    artifact=str(path),
                )))

    with scoped_registry() as registry:
        server = DiagnosisServer(ServeConfig(workers=1, pool_size=1))
        outcomes = server.diagnose_batch([req for _, _, req in requests])
        evictions = registry.counters["serve.pool_evictions"].value
        misses = registry.counters["serve.pool_misses"].value
    assert evictions > 0, "capacity-1 pool over 3 artifacts must evict"
    assert misses > len(golden_artifacts), "revisits must reload, not hit"

    for (cell, name, request), outcome in zip(requests, outcomes):
        assert outcome.code == "ok", (cell, name, outcome.detail)
        exact, ranked = reference[(cell, name)]
        assert outcome.exact == exact, (cell, name)
        assert outcome.ranked == ranked, (cell, name)
        assert name in outcome.exact  # the injected fault names itself


def test_vector_backend_builds_and_serves_identical_cells(golden_artifacts, tmp_path):
    """The backend used to *build* must be invisible at serve time.

    Each golden cell is rebuilt under the vector backend (and, for the
    first cell, under its numpy-blocked fallback), packed, and served —
    the artifacts' dictionaries and every served outcome must equal the
    default-backend build's.
    """
    from tests.util import fallback_vector_registered, numpy_import_blocked

    legs = [("vector", cell) for cell in CELLS]
    legs.append(("vector-fallback", CELLS[0]))
    for leg, cell in legs:
        circuit, test_type = cell
        _, table = response_table_for(circuit, test_type, SEED)
        config = DictionaryConfig(seed=SEED, calls1=CALLS, backend="vector")
        if leg == "vector-fallback":
            with fallback_vector_registered(), numpy_import_blocked():
                rebuilt = build(table, config=config)
        else:
            rebuilt = build(table, config=config)
        _, reference = golden_artifacts[cell]
        assert rebuilt.dictionary.baselines == reference.dictionary.baselines, leg
        path = tmp_path / f"{circuit}-{test_type}-{leg}.rfd"
        save_artifact(rebuilt, path)

        names = sample_fault_names(reference)
        diagnoser = Diagnoser(reference.dictionary)
        server = DiagnosisServer(
            ServeConfig(workers=1, pool_size=1), default_artifact=str(path)
        )
        outcomes = server.diagnose_batch(
            [DiagnosisRequest(request_id=name, fault=name) for name in names]
        )
        for name, outcome in zip(names, outcomes):
            assert outcome.code == "ok", (leg, cell, name, outcome.detail)
            index = [str(f) for f in reference.table.faults].index(name)
            want = diagnoser.diagnose(
                list(reference.table.full_row(index)), limit=10
            )
            assert outcome.exact == [str(f) for f in want.exact], (leg, name)
            assert outcome.ranked == [
                (str(f), score) for f, score in want.ranked
            ], (leg, name)


def test_daemon_serves_golden_cells_over_a_real_socket(golden_artifacts):
    """The network daemon must not perturb a single golden bit.

    Every sampled fault of every golden cell is diagnosed twice — by a
    direct ``Diagnoser`` on the in-memory build, and through the asyncio
    daemon over a real localhost socket — and the exact/ranked lists
    must agree pair for pair.
    """
    import http.client
    import json

    from repro.serve.daemon import DaemonConfig, start_in_thread

    handle = start_in_thread(DaemonConfig(port=0, serve=ServeConfig(workers=2)))
    try:
        conn = http.client.HTTPConnection(handle.host, handle.port, timeout=30)
        for cell, (path, built) in golden_artifacts.items():
            diagnoser = Diagnoser(built.dictionary)
            for name in sample_fault_names(built):
                index = [str(f) for f in built.table.faults].index(name)
                want = diagnoser.diagnose(
                    list(built.table.full_row(index)), limit=10
                )
                conn.request(
                    "POST", "/v1/diagnose",
                    body=json.dumps({
                        "id": name, "fault": name, "artifact": str(path),
                    }).encode(),
                )
                response = conn.getresponse()
                doc = json.loads(response.read().decode())
                assert response.status == 200, (cell, name, doc)
                assert doc["code"] == "ok", (cell, name, doc)
                assert doc["exact"] == [str(f) for f in want.exact], (cell, name)
                assert doc["ranked"] == [
                    [str(f), score] for f, score in want.ranked
                ], (cell, name)
        conn.close()
    finally:
        handle.stop()


def test_reloads_are_stable_across_runs(golden_artifacts):
    (path, built) = golden_artifacts[CELLS[0]]
    names = sample_fault_names(built)
    batches = []
    for _ in range(2):
        with scoped_registry():
            server = DiagnosisServer(
                ServeConfig(workers=2, pool_size=1),
                default_artifact=str(path),
            )
            outcomes = server.diagnose_batch([
                DiagnosisRequest(request_id=name, fault=name)
                for name in names
            ])
        batches.append([
            (o.request_id, o.code, tuple(o.exact), tuple(o.ranked))
            for o in outcomes
        ])
    assert batches[0] == batches[1]
