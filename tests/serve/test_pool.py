"""ArtifactPool: LRU bounds, content-hash keying, single-flight loads."""

from __future__ import annotations

import shutil
import threading
import time

import pytest

from repro.obs import scoped_registry
from repro.serve import ArtifactPool
from repro.store import ArtifactFormatError, load_artifact, read_content_hash


class TestKeyingAndLru:
    def test_hit_after_load(self, artifact_a):
        path, _ = artifact_a
        with scoped_registry() as registry:
            pool = ArtifactPool(capacity=2)
            first = pool.get(path)
            second = pool.get(path)
            assert first is second
            assert registry.counters["serve.pool_misses"].value == 1
            assert registry.counters["serve.pool_hits"].value == 1
            assert registry.gauges["serve.pool_size"].value == 1

    def test_same_content_different_path_shares_one_entry(
        self, artifact_a, tmp_path
    ):
        path, _ = artifact_a
        copy = tmp_path / "copy.rfd"
        shutil.copy(path, copy)
        with scoped_registry() as registry:
            pool = ArtifactPool(capacity=4)
            assert pool.get(path) is pool.get(copy)
            assert len(pool) == 1
            assert registry.counters["serve.pool_misses"].value == 1

    def test_lru_eviction_at_capacity(self, artifact_a, artifact_b, artifact_c):
        paths = [artifact_a[0], artifact_b[0], artifact_c[0]]
        with scoped_registry() as registry:
            pool = ArtifactPool(capacity=2)
            pool.get(paths[0])
            pool.get(paths[1])
            pool.get(paths[0])  # refresh a: LRU order is now b, a
            pool.get(paths[2])  # evicts b
            assert registry.counters["serve.pool_evictions"].value == 1
            resident = pool.resident_hashes()
            assert read_content_hash(paths[1]) not in resident
            assert read_content_hash(paths[0]) in resident
            # b reloads on next touch.
            pool.get(paths[1])
            assert registry.counters["serve.pool_misses"].value == 4

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            ArtifactPool(capacity=0)

    def test_evict_and_clear(self, artifact_a):
        path, _ = artifact_a
        with scoped_registry():
            pool = ArtifactPool(capacity=2)
            entry = pool.get(path)
            assert pool.evict(entry.content_hash) is True
            assert pool.evict(entry.content_hash) is False
            pool.get(path)
            pool.clear()
            assert len(pool) == 0


class TestSingleFlight:
    def test_concurrent_misses_load_once(self, artifact_a):
        path, _ = artifact_a
        load_started = threading.Event()
        release = threading.Event()
        loads = []

        def slow_loader(p):
            loads.append(p)
            load_started.set()
            release.wait(timeout=10)
            return load_artifact(p)

        with scoped_registry() as registry:
            pool = ArtifactPool(capacity=2, loader=slow_loader)
            results = [None] * 6

            def worker(slot):
                results[slot] = pool.get(path)

            threads = [threading.Thread(target=worker, args=(0,))]
            threads[0].start()
            assert load_started.wait(timeout=10)
            # The key is now in flight: five more lookups must wait on it.
            for slot in range(1, 6):
                thread = threading.Thread(target=worker, args=(slot,))
                thread.start()
                threads.append(thread)
            deadline = time.monotonic() + 10
            waits = registry.counter("serve.pool_single_flight_waits")
            while waits.value < 5 and time.monotonic() < deadline:
                time.sleep(0.001)
            release.set()
            for thread in threads:
                thread.join(timeout=10)
            assert len(loads) == 1, "single-flight must deduplicate the load"
            assert all(entry is results[0] for entry in results)
            assert registry.counters["serve.pool_misses"].value == 1
            assert registry.counters["serve.pool_single_flight_waits"].value == 5

    def test_failed_load_propagates_and_is_not_cached(self, artifact_a):
        path, _ = artifact_a
        calls = []

        def flaky_loader(p):
            calls.append(p)
            if len(calls) == 1:
                raise ArtifactFormatError("injected transient fault")
            return load_artifact(p)

        with scoped_registry():
            pool = ArtifactPool(capacity=2, loader=flaky_loader)
            with pytest.raises(ArtifactFormatError, match="injected"):
                pool.get(path)
            # The failure is not a resident entry: the retry loads cleanly.
            entry = pool.get(path)
            assert len(calls) == 2
            assert entry.built.kind == "same-different"


class TestValidation:
    def test_probe_rejects_non_artifact(self, tmp_path):
        bogus = tmp_path / "bogus.rfd"
        bogus.write_bytes(b"not an artifact, definitely" * 8)
        pool = ArtifactPool(capacity=1)
        with pytest.raises(ArtifactFormatError, match="bad magic"):
            pool.get(bogus)

    def test_probe_rejects_truncation(self, tmp_path, artifact_a):
        path, _ = artifact_a
        stub = tmp_path / "stub.rfd"
        stub.write_bytes(path.read_bytes()[:20])
        pool = ArtifactPool(capacity=1)
        with pytest.raises(ArtifactFormatError, match="too short"):
            pool.get(stub)

    def test_corrupt_body_fails_strictly(self, tmp_path, artifact_a):
        path, _ = artifact_a
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # flip a payload bit: body checksum must catch it
        hurt = tmp_path / "hurt.rfd"
        hurt.write_bytes(bytes(raw))
        pool = ArtifactPool(capacity=1)
        with pytest.raises(ArtifactFormatError, match="checksum"):
            pool.get(hurt)


class TestPinning:
    def test_pinned_entries_survive_lru_pressure(
        self, artifact_a, artifact_b, artifact_c
    ):
        with scoped_registry():
            pool = ArtifactPool(capacity=1)
            pinned = pool.pin(artifact_a[0])
            assert pool.pinned_hashes() == [pinned.content_hash]
            # Two more loads through a capacity-1 pool: each would evict
            # the LRU entry, but the pinned one must never be the victim.
            pool.get(artifact_b[0])
            pool.get(artifact_c[0])
            assert pinned.content_hash in pool.resident_hashes()
            assert pool.get(artifact_a[0]) is pinned  # still a hit

    def test_all_pinned_allows_overflow(self, artifact_a, artifact_b):
        with scoped_registry() as registry:
            pool = ArtifactPool(capacity=1)
            pool.pin(artifact_a[0])
            pool.pin(artifact_b[0])
            assert len(pool) == 2  # over capacity, by pinning
            assert "serve.pool_evictions" not in registry.counters

    def test_unpin_restores_evictability(self, artifact_a, artifact_b):
        with scoped_registry():
            pool = ArtifactPool(capacity=1)
            pinned = pool.pin(artifact_a[0])
            assert pool.unpin(pinned.content_hash) is True
            assert pool.unpin(pinned.content_hash) is False
            pool.get(artifact_b[0])  # now evicts the formerly-pinned entry
            assert pinned.content_hash not in pool.resident_hashes()

    def test_explicit_evict_and_clear_drop_pins(self, artifact_a):
        with scoped_registry():
            pool = ArtifactPool(capacity=2)
            pinned = pool.pin(artifact_a[0])
            assert pool.evict(pinned.content_hash) is True
            assert pool.pinned_hashes() == []
            pool.pin(artifact_a[0])
            pool.clear()
            assert pool.pinned_hashes() == []
            assert len(pool) == 0

    def test_resident_reports_pin_state_and_shape(self, artifact_a, artifact_b):
        with scoped_registry():
            pool = ArtifactPool(capacity=4)
            pinned = pool.pin(artifact_a[0])
            pool.get(artifact_b[0])
            info = {entry["content_hash"]: entry for entry in pool.resident()}
            assert info[pinned.content_hash]["pinned"] is True
            assert info[pinned.content_hash]["path"] == str(artifact_a[0])
            assert info[pinned.content_hash]["faults"] == pinned.table.n_faults
            others = [e for e in pool.resident() if not e["pinned"]]
            assert len(others) == 1
