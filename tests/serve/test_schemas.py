"""The typed wire schemas: round-trips, versioning, strict validation."""

from __future__ import annotations

import json

import pytest

from repro.serve import outcomes
from repro.serve.outcomes import DiagnosisOutcome
from repro.serve.schemas import (
    BAD_REQUEST,
    OK,
    REASON_CODES,
    SCHEMA_VERSION,
    DiagnoseRequest,
    DiagnoseResult,
    SchemaError,
    SessionAdvance,
)


class TestDiagnoseRequestRoundTrip:
    def test_observed_round_trips(self):
        request = DiagnoseRequest.from_dict(
            {"id": "chip-1", "observed": [[0, 2], [], [1]], "limit": 5},
            default_id="x",
        )
        doc = request.as_dict()
        assert doc["schema"] == SCHEMA_VERSION
        again = DiagnoseRequest.from_dict(doc, default_id="y")
        assert again == request

    def test_fault_and_tenant_round_trip(self):
        request = DiagnoseRequest.from_dict(
            {"fault": "G1/sa1", "artifact": "a.rfd", "tenant": "acme"},
            default_id="r-1",
        )
        assert request.request_id == "r-1"
        assert request.tenant == "acme"
        assert DiagnoseRequest.from_dict(
            json.loads(request.to_json()), default_id="z"
        ) == request

    def test_observations_round_trip(self):
        request = DiagnoseRequest.from_dict(
            {"id": "s", "observations": [[0, [1]], [3, []]]}, default_id="x"
        )
        assert request.observations == ((0, (1,)), (3, ()))
        assert DiagnoseRequest.from_dict(
            request.as_dict(), default_id="x"
        ) == request

    def test_default_fields_are_omitted_from_the_wire(self):
        doc = DiagnoseRequest.from_dict(
            {"id": "a", "fault": "f"}, default_id="x"
        ).as_dict()
        assert set(doc) == {"schema", "id", "fault"}

    def test_fleet_fields_round_trip(self):
        request = DiagnoseRequest.from_dict(
            {
                "id": "a", "fault": "f", "max_faults": 2,
                "flip_budget": 1, "strategy": "entropy",
            },
            default_id="x",
        )
        assert request.max_faults == 2
        assert request.flip_budget == 1
        assert request.strategy == "entropy"
        doc = request.as_dict()
        assert doc["max_faults"] == 2
        assert DiagnoseRequest.from_dict(doc, default_id="x") == request

    def test_fleet_fields_default_to_none_and_stay_off_the_wire(self):
        """A request without the fleet fields serializes byte-identically
        to the pre-fleet wire shape — server defaults apply."""
        request = DiagnoseRequest.from_dict(
            {"id": "a", "fault": "f"}, default_id="x"
        )
        assert request.max_faults is None
        assert request.flip_budget is None
        assert request.strategy is None
        assert set(request.as_dict()) == {"schema", "id", "fault"}

    @pytest.mark.parametrize("doc, fragment", [
        ({"id": "a", "fault": "f", "max_faults": 0}, "max_faults"),
        ({"id": "a", "fault": "f", "max_faults": True}, "max_faults"),
        ({"id": "a", "fault": "f", "flip_budget": -1}, "flip_budget"),
        ({"id": "a", "fault": "f", "strategy": "oracle"}, "strategy"),
        ({"id": "a", "fault": "f", "strategy": 1}, "strategy"),
    ])
    def test_fleet_field_validation(self, doc, fragment):
        with pytest.raises(SchemaError, match=fragment):
            DiagnoseRequest.from_dict(doc, default_id="x")

    def test_session_advance_strategy_round_trips(self):
        advance = SessionAdvance.from_dict(
            {"session": "s", "suggest": True, "strategy": "entropy"}
        )
        assert advance.strategy == "entropy"
        assert SessionAdvance.from_dict(advance.as_dict()) == advance
        plain = SessionAdvance.from_dict({"session": "s"})
        assert plain.strategy is None
        assert "strategy" not in plain.as_dict()


class TestSchemaVersioning:
    def test_missing_schema_field_means_current(self):
        request = DiagnoseRequest.from_dict(
            {"id": "a", "fault": "f"}, default_id="x"
        )
        assert request.fault == "f"

    @pytest.mark.parametrize("version", [0, 2, 99, "1", 1.0, True])
    def test_other_versions_are_rejected(self, version):
        with pytest.raises(SchemaError, match="schema"):
            DiagnoseRequest.from_dict(
                {"schema": version, "id": "a", "fault": "f"}, default_id="x"
            )

    def test_result_and_session_check_the_version_too(self):
        with pytest.raises(SchemaError, match="schema"):
            DiagnoseResult.from_dict({"schema": 7, "id": "a", "code": "ok"})
        with pytest.raises(SchemaError, match="schema"):
            SessionAdvance.from_dict({"schema": 7, "session": "s"})


class TestStrictValidation:
    @pytest.mark.parametrize("doc, fragment", [
        ([1, 2], "JSON object"),
        ({"id": "a"}, "exactly one of"),
        ({"id": "a", "fault": "f", "observed": [[0]]}, "exactly one of"),
        ({"id": "a", "fault": "f", "bogus": 1}, "unknown request fields"),
        ({"id": "", "fault": "f"}, "non-empty string"),
        ({"id": "a", "fault": ""}, "fault"),
        ({"id": "a", "observed": [[0, 0]]}, "repeats"),
        ({"id": "a", "observed": [[-1]]}, "non-negative"),
        ({"id": "a", "observed": "nope"}, "list"),
        ({"id": "a", "fault": "f", "limit": -1}, "limit"),
        ({"id": "a", "fault": "f", "limit": True}, "limit"),
        ({"id": "a", "fault": "f", "artifact": ""}, "artifact"),
        ({"id": "a", "fault": "f", "tenant": ""}, "tenant"),
        ({"id": "a", "observations": []}, "non-empty"),
        ({"id": "a", "observations": [[0]]}, "pair"),
        ({"id": "a", "observations": [["x", [0]]]}, "test index"),
    ])
    def test_malformations_raise_schema_errors(self, doc, fragment):
        with pytest.raises(SchemaError, match=fragment) as info:
            DiagnoseRequest.from_dict(doc, default_id="x")
        assert info.value.code == BAD_REQUEST

    def test_session_advance_strictness(self):
        with pytest.raises(SchemaError, match="unknown session-advance"):
            SessionAdvance.from_dict({"session": "s", "nope": 1})
        with pytest.raises(SchemaError, match="session"):
            SessionAdvance.from_dict({"suggest": True})
        with pytest.raises(SchemaError, match="suggest"):
            SessionAdvance.from_dict({"session": "s", "suggest": "yes"})

    def test_session_id_from_path_overrides_body(self):
        advance = SessionAdvance.from_dict(
            {"session": "body", "suggest": True}, session_id="path"
        )
        assert advance.session_id == "path"
        assert advance.as_dict()["session"] == "path"


class TestDiagnoseResult:
    def test_freezes_an_outcome_and_round_trips(self):
        outcome = DiagnosisOutcome(
            request_id="r", code=OK,
            exact=["a"], ranked=[("a", 9), ("b", 7)],
            attempts=2, elapsed_seconds=0.25,
            narrowing=[5, 3, 1], converged=True,
        )
        result = DiagnoseResult.from_outcome(outcome)
        doc = result.as_dict()
        assert doc["schema"] == SCHEMA_VERSION
        again = DiagnoseResult.from_dict(json.loads(json.dumps(doc)))
        assert again == result
        assert again.ok

    def test_policy_block_survives_the_wire(self):
        outcome = DiagnosisOutcome(
            request_id="r", code="deadline_expired",
            detail="too slow",
            policy={"deadline_ms": 5.0, "max_retries": 2,
                    "retry_backoff_ms": 10.0},
        )
        doc = DiagnoseResult.from_outcome(outcome).as_dict()
        assert doc["policy"] == {
            "deadline_ms": 5.0, "max_retries": 2, "retry_backoff_ms": 10.0,
        }
        again = DiagnoseResult.from_dict(doc)
        assert dict(again.policy) == doc["policy"]

    def test_outcome_as_dict_is_the_wire_shape_minus_schema(self):
        outcome = DiagnosisOutcome(request_id="r", code=OK, exact=["a"])
        doc = outcome.as_dict()
        assert "schema" not in doc
        wire = DiagnoseResult.from_outcome(outcome).as_dict()
        wire.pop("schema")
        assert doc == wire

    def test_unknown_code_is_rejected(self):
        with pytest.raises(SchemaError, match="reason code"):
            DiagnoseResult.from_dict({"id": "a", "code": "nope"})


class TestBackCompatAliases:
    def test_old_names_are_the_new_types(self):
        assert outcomes.DiagnosisRequest is DiagnoseRequest
        assert outcomes.BadRequest is SchemaError
        from repro.serve import BadRequest, DiagnosisRequest
        assert DiagnosisRequest is DiagnoseRequest
        assert BadRequest is SchemaError

    def test_reason_codes_re_export(self):
        assert outcomes.REASON_CODES == REASON_CODES
        assert outcomes.OK is OK

    def test_parse_jsonl_still_degrades_bad_lines(self):
        lines = [
            json.dumps({"id": "good", "fault": "f"}),
            "{broken json",
            json.dumps({"id": "bad", "fault": "f", "schema": 9}),
        ]
        parsed = outcomes.parse_jsonl(lines)
        assert isinstance(parsed[0], DiagnoseRequest)
        assert isinstance(parsed[1], DiagnosisOutcome)
        assert parsed[1].code == BAD_REQUEST
        assert parsed[2].request_id == "bad"
        assert "schema" in parsed[2].detail

    def test_parse_batch_docs_mirrors_parse_jsonl(self):
        parsed = outcomes.parse_batch_docs([
            {"id": "good", "fault": "f"},
            {"nonsense": True},
        ])
        assert isinstance(parsed[0], DiagnoseRequest)
        assert parsed[1].code == BAD_REQUEST
        assert "request 2" in parsed[1].detail
