"""DiagnosisServer: deadlines, retries, degradation — with injected time."""

from __future__ import annotations

import pytest

from repro.obs import scoped_registry
from repro.serve import (
    ArtifactPool,
    DiagnosisOutcome,
    DiagnosisRequest,
    DiagnosisServer,
    ServeConfig,
)
from repro.store import ArtifactFormatError, load_artifact


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class FakeSleep:
    """Records requested sleeps and advances the paired clock instead."""

    def __init__(self, clock):
        self.clock = clock
        self.calls = []

    def __call__(self, seconds):
        self.calls.append(seconds)
        self.clock.advance(seconds)


def make_server(artifact_path, *, loader=None, clock=None, sleep=None, **cfg):
    clock = clock if clock is not None else FakeClock()
    sleep = sleep if sleep is not None else FakeSleep(clock)
    config = ServeConfig(workers=1, **cfg)
    pool = ArtifactPool(config.pool_size, loader=loader)
    server = DiagnosisServer(
        config,
        default_artifact=str(artifact_path),
        pool=pool,
        clock=clock,
        sleep=sleep,
    )
    return server, clock, sleep


class TestConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError, match="workers"):
            ServeConfig(workers=0)
        with pytest.raises(ValueError, match="max_retries"):
            ServeConfig(max_retries=-1)
        with pytest.raises(ValueError, match="deadline_ms"):
            ServeConfig(deadline_ms=0)


class TestLookups:
    def test_fault_request_finds_itself(self, artifact_a):
        path, built = artifact_a
        server, _, _ = make_server(path)
        with scoped_registry():
            [outcome] = server.diagnose_batch(
                [DiagnosisRequest(request_id="r1", fault="f0/sa0")]
            )
        assert outcome.code == "ok"
        assert "f0/sa0" in outcome.exact
        assert outcome.attempts == 1

    def test_observed_request_matches_stored_row(self, artifact_a):
        path, built = artifact_a
        observed = tuple(built.table.full_row(3))
        server, _, _ = make_server(path)
        with scoped_registry():
            [outcome] = server.diagnose_batch(
                [DiagnosisRequest(request_id="r1", observed=observed)]
            )
        assert outcome.code == "ok"
        assert "f3/sa0" in outcome.exact

    def test_unknown_fault_is_unmodeled(self, artifact_a):
        path, _ = artifact_a
        server, _, _ = make_server(path)
        with scoped_registry():
            [outcome] = server.diagnose_batch(
                [DiagnosisRequest(request_id="r1", fault="nope/sa1")]
            )
        assert outcome.code == "unmodeled_response"
        assert "catalogue" in outcome.detail

    def test_wrong_test_count_is_unmodeled(self, artifact_a):
        path, _ = artifact_a
        server, _, _ = make_server(path)
        with scoped_registry():
            [outcome] = server.diagnose_batch(
                [DiagnosisRequest(request_id="r1", observed=((0,),))]
            )
        assert outcome.code == "unmodeled_response"
        assert "tests" in outcome.detail

    def test_out_of_range_output_is_unmodeled(self, artifact_a):
        path, built = artifact_a
        observed = [()] * built.table.n_tests
        observed[0] = (99,)
        server, _, _ = make_server(path)
        with scoped_registry():
            [outcome] = server.diagnose_batch(
                [DiagnosisRequest(request_id="r1", observed=tuple(observed))]
            )
        assert outcome.code == "unmodeled_response"
        assert "output" in outcome.detail

    def test_flip_budget_request_recovers_corrupted_row(self, artifact_a):
        path, built = artifact_a
        observed = list(built.table.full_row(3))
        observed[1] = () if observed[1] else (0,)
        server, _, _ = make_server(path)
        with scoped_registry():
            [strict] = server.diagnose_batch([
                DiagnosisRequest(request_id="r1", observed=tuple(observed))
            ])
            [tolerant] = server.diagnose_batch([
                DiagnosisRequest(
                    request_id="r2", observed=tuple(observed), flip_budget=1
                )
            ])
        assert strict.code == "ok" and "f3/sa0" not in strict.exact
        assert tolerant.code == "ok"
        ranked_names = [name for name, _ in tolerant.ranked]
        assert "f3/sa0" in ranked_names

    def test_multiplet_request_names_the_pair(self, artifact_a):
        from repro.diagnosis.multiplet import compose_observation

        path, built = artifact_a
        observed = compose_observation(built.table, (2, 9))
        server, _, _ = make_server(path)
        with scoped_registry():
            [outcome] = server.diagnose_batch([
                DiagnosisRequest(
                    request_id="r1", observed=tuple(observed), max_faults=2
                )
            ])
        assert outcome.code == "ok"
        names = outcome.exact + [name for name, _ in outcome.ranked]
        assert any("+" in name for name in names)

    def test_config_level_defaults_apply_when_request_is_silent(
        self, artifact_a
    ):
        path, built = artifact_a
        observed = list(built.table.full_row(3))
        observed[1] = () if observed[1] else (0,)
        server, _, _ = make_server(path, flip_budget=1)
        with scoped_registry():
            [outcome] = server.diagnose_batch([
                DiagnosisRequest(request_id="r1", observed=tuple(observed))
            ])
        assert outcome.code == "ok"
        assert "f3/sa0" in [name for name, _ in outcome.ranked]

    def test_fleet_config_validation(self):
        with pytest.raises(ValueError, match="max_faults"):
            ServeConfig(max_faults=0)
        with pytest.raises(ValueError, match="flip_budget"):
            ServeConfig(flip_budget=-1)
        with pytest.raises(ValueError, match="strategy"):
            ServeConfig(strategy="oracle")

    def test_request_with_no_mode_is_bad_request(self, artifact_a):
        path, _ = artifact_a
        server, _, _ = make_server(path)
        with scoped_registry():
            [outcome] = server.diagnose_batch(
                [DiagnosisRequest(request_id="r1")]
            )
        assert outcome.code == "bad_request"

    def test_no_artifact_anywhere_is_bad_request(self):
        server = DiagnosisServer(ServeConfig(workers=1))
        with scoped_registry():
            [outcome] = server.diagnose_batch(
                [DiagnosisRequest(request_id="r1", fault="f0/sa0")]
            )
        assert outcome.code == "bad_request"
        assert "default" in outcome.detail

    def test_premade_outcomes_pass_through_in_position(self, artifact_a):
        path, _ = artifact_a
        server, _, _ = make_server(path)
        early = DiagnosisOutcome(request_id="corrupt", code="bad_request")
        with scoped_registry() as registry:
            outcomes = server.diagnose_batch(
                [
                    DiagnosisRequest(request_id="r1", fault="f0/sa0"),
                    early,
                    DiagnosisRequest(request_id="r3", fault="f1/sa0"),
                ]
            )
            assert [o.request_id for o in outcomes] == ["r1", "corrupt", "r3"]
            assert outcomes[1] is early
            assert registry.counters["serve.outcomes.bad_request"].value == 1
            assert registry.counters["serve.outcomes.ok"].value == 2
            assert registry.counters["serve.requests"].value == 3


class TestRetries:
    def test_transient_faults_retry_with_exponential_backoff(self, artifact_a):
        path, _ = artifact_a
        failures = [
            ArtifactFormatError("flake one"),
            ArtifactFormatError("flake two"),
        ]

        def flaky_loader(p):
            if failures:
                raise failures.pop(0)
            return load_artifact(p)

        server, _, sleep = make_server(
            path, loader=flaky_loader, max_retries=2, retry_backoff_ms=10.0
        )
        with scoped_registry() as registry:
            [outcome] = server.diagnose_batch(
                [DiagnosisRequest(request_id="r1", fault="f0/sa0")]
            )
            assert outcome.code == "ok"
            assert outcome.attempts == 3
            assert registry.counters["serve.retries"].value == 2
        assert sleep.calls == [0.010, 0.020]

    def test_retries_exhausted_degrades_to_artifact_error(self, artifact_a):
        path, _ = artifact_a

        def broken_loader(p):
            raise ArtifactFormatError("permanently hurt")

        server, _, sleep = make_server(
            path, loader=broken_loader, max_retries=2, retry_backoff_ms=5.0
        )
        with scoped_registry():
            [outcome] = server.diagnose_batch(
                [DiagnosisRequest(request_id="r1", fault="f0/sa0")]
            )
        assert outcome.code == "artifact_error"
        assert outcome.attempts == 3
        assert "permanently hurt" in outcome.detail
        assert sleep.calls == [0.005, 0.010]

    def test_zero_retries_fails_on_first_error(self, artifact_a):
        path, _ = artifact_a

        def broken_loader(p):
            raise ArtifactFormatError("hurt")

        server, _, sleep = make_server(path, loader=broken_loader, max_retries=0)
        with scoped_registry():
            [outcome] = server.diagnose_batch(
                [DiagnosisRequest(request_id="r1", fault="f0/sa0")]
            )
        assert outcome.code == "artifact_error"
        assert outcome.attempts == 1
        assert sleep.calls == []

    def test_unexpected_loader_exception_is_internal_error(self, artifact_a):
        path, _ = artifact_a

        def exploding_loader(p):
            raise RuntimeError("not a transient artifact problem")

        server, _, sleep = make_server(path, loader=exploding_loader)
        with scoped_registry() as registry:
            [outcome] = server.diagnose_batch(
                [DiagnosisRequest(request_id="r1", fault="f0/sa0")]
            )
            assert registry.counters["serve.outcomes.internal_error"].value == 1
        assert outcome.code == "internal_error"
        assert "RuntimeError" in outcome.detail
        assert sleep.calls == []  # no retry budget spent on non-transients


class TestDeadlines:
    def test_slow_load_expires_the_deadline(self, artifact_a):
        path, _ = artifact_a
        clock = FakeClock()

        def slow_loader(p):
            clock.advance(0.2)  # slower than the 50ms budget
            return load_artifact(p)

        server, _, _ = make_server(
            path, loader=slow_loader, clock=clock, deadline_ms=50.0
        )
        with scoped_registry():
            [outcome] = server.diagnose_batch(
                [DiagnosisRequest(request_id="r1", fault="f0/sa0")]
            )
        assert outcome.code == "deadline_expired"
        assert outcome.elapsed_seconds == pytest.approx(0.2)

    def test_backoff_never_sleeps_past_the_deadline(self, artifact_a):
        path, _ = artifact_a
        clock = FakeClock()

        def broken_loader(p):
            clock.advance(0.001)  # each failed load costs 1ms of budget
            raise ArtifactFormatError("hurt")

        # 1000ms backoff against a 100ms budget: the sleep must be clipped.
        server, _, sleep = make_server(
            path,
            loader=broken_loader,
            clock=clock,
            max_retries=3,
            retry_backoff_ms=1000.0,
            deadline_ms=100.0,
        )
        with scoped_registry():
            [outcome] = server.diagnose_batch(
                [DiagnosisRequest(request_id="r1", fault="f0/sa0")]
            )
        assert outcome.code == "deadline_expired"
        # One clipped backoff, then the budget is gone: no 1s sleep ever ran.
        assert sleep.calls and max(sleep.calls) <= 0.1
        assert outcome.attempts == 2

    def test_no_deadline_means_no_expiry(self, artifact_a):
        path, _ = artifact_a
        clock = FakeClock()

        def slow_loader(p):
            clock.advance(3600.0)
            return load_artifact(p)

        server, _, _ = make_server(path, loader=slow_loader, clock=clock)
        with scoped_registry():
            [outcome] = server.diagnose_batch(
                [DiagnosisRequest(request_id="r1", fault="f0/sa0")]
            )
        assert outcome.code == "ok"

    def test_session_request_reports_partial_narrowing_on_expiry(
        self, artifact_a
    ):
        path, built = artifact_a

        class TickingClock(FakeClock):
            """Every reading costs 10ms — deadline checks see time move."""

            def __call__(self):
                reading = self.now
                self.now += 0.010
                return reading

        # Budget of 35ms against 10ms-per-check: the deadline survives the
        # load and the first observation, then expires on the second.
        server, _, _ = make_server(
            path, clock=TickingClock(), deadline_ms=35.0
        )
        row = built.table.full_row(0)
        observations = tuple((j, row[j]) for j in range(3))
        with scoped_registry():
            server.pool.get(path)  # warm: the load is not the slow part
            [outcome] = server.diagnose_batch(
                [DiagnosisRequest(request_id="r1", observations=observations)]
            )
        assert outcome.code == "deadline_expired"
        assert outcome.narrowing is not None
        assert len(outcome.narrowing) == 2  # expired after two of three
        assert "2 observations" in outcome.detail


class TestJsonl:
    def test_corrupt_line_degrades_only_itself(self, artifact_a):
        path, _ = artifact_a
        server, _, _ = make_server(path)
        lines = [
            '{"id": "good", "fault": "f0/sa0"}',
            "{this is not json",
            '{"id": "alien", "warp": 9}',
        ]
        with scoped_registry():
            outcomes = server.serve_jsonl(lines)
        assert [o.code for o in outcomes] == ["ok", "bad_request", "bad_request"]
        assert "invalid JSON" in outcomes[1].detail
        assert "unknown request fields" in outcomes[2].detail

    def test_outcome_json_round_trip(self, artifact_a):
        import json

        path, _ = artifact_a
        server, _, _ = make_server(path)
        with scoped_registry():
            [outcome] = server.serve_jsonl(['{"fault": "f0/sa0"}'])
        doc = json.loads(outcome.to_json_line())
        assert doc["code"] == "ok"
        assert doc["id"] == "request-1"
        assert doc["attempts"] == 1


class TestPolicyAudit:
    """Degraded outcomes carry the operative deadline/retry settings, so
    a ``deadline_expired``/``artifact_error`` JSONL line is auditable
    without the CLI summary (the PR-8 fix)."""

    def test_deadline_expired_outcome_carries_policy(self, artifact_a):
        path, _ = artifact_a
        clock = FakeClock()

        def slow_loader(p):
            clock.advance(0.2)
            return load_artifact(p)

        server, _, _ = make_server(
            path, loader=slow_loader, clock=clock,
            deadline_ms=50.0, max_retries=1, retry_backoff_ms=7.0,
        )
        with scoped_registry():
            [outcome] = server.diagnose_batch(
                [DiagnosisRequest(request_id="r1", fault="f0/sa0")]
            )
        assert outcome.code == "deadline_expired"
        assert outcome.policy == {
            "deadline_ms": 50.0, "max_retries": 1, "retry_backoff_ms": 7.0,
        }
        # And it reaches the JSONL line itself.
        import json
        doc = json.loads(outcome.to_json_line())
        assert doc["policy"]["deadline_ms"] == 50.0

    def test_artifact_error_outcome_carries_policy(self, artifact_a):
        path, _ = artifact_a

        def broken_loader(p):
            raise ArtifactFormatError("hurt")

        server, _, _ = make_server(
            path, loader=broken_loader, max_retries=2, retry_backoff_ms=5.0
        )
        with scoped_registry():
            [outcome] = server.diagnose_batch(
                [DiagnosisRequest(request_id="r1", fault="f0/sa0")]
            )
        assert outcome.code == "artifact_error"
        assert outcome.policy == {
            "deadline_ms": None, "max_retries": 2, "retry_backoff_ms": 5.0,
        }

    def test_ok_and_bad_request_outcomes_carry_no_policy(self, artifact_a):
        path, built = artifact_a
        server, _, _ = make_server(path)
        with scoped_registry():
            outcomes = server.diagnose_batch([
                DiagnosisRequest(
                    request_id="ok", fault=str(built.table.faults[0])
                ),
                DiagnosisRequest(request_id="nope", fault="not-a-fault"),
            ])
        assert [o.code for o in outcomes] == ["ok", "unmodeled_response"]
        for outcome in outcomes:
            assert outcome.policy is None
            assert "policy" not in outcome.as_dict()


class TestDiagnoseOne:
    """The daemon's per-request hot path mirrors one batch entry."""

    def test_counts_outcome_and_matches_batch(self, artifact_a):
        path, built = artifact_a
        server, _, _ = make_server(path)
        request = DiagnosisRequest(
            request_id="solo", fault=str(built.table.faults[1])
        )
        with scoped_registry() as registry:
            single = server.diagnose_one(request)
            assert registry.counters["serve.outcomes.ok"].value == 1
            assert registry.counters["serve.requests"].value == 1
            assert "serve.batches" not in registry.counters
        with scoped_registry():
            [batched] = server.diagnose_batch([request])
        assert single.as_dict() == batched.as_dict()

    def test_premade_outcome_passes_through(self, artifact_a):
        path, _ = artifact_a
        server, _, _ = make_server(path)
        premade = DiagnosisOutcome(request_id="x", code="bad_request")
        with scoped_registry():
            assert server.diagnose_one(premade) is premade
