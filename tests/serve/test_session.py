"""DiagnosisSession: narrowing, convergence, adaptive test suggestion."""

from __future__ import annotations

import pytest

from repro.dictionaries.full import FullDictionary
from repro.dictionaries.passfail import PassFailDictionary
from repro.obs import scoped_registry
from repro.serve import DiagnosisSession
from repro.sim.responses import PASS
from tests.util import random_table


def drive_to_ground_truth(session, table, fault_index):
    """Feed every test's stored response for one fault, in test order."""
    row = table.full_row(fault_index)
    for j, signature in enumerate(row):
        session.observe(j, signature)


class TestNarrowing:
    def test_ground_truth_fault_always_survives(self, artifact_a):
        _, built = artifact_a
        table = built.table
        for fault_index in range(0, table.n_faults, 5):
            with scoped_registry():
                session = DiagnosisSession(built.dictionary)
                drive_to_ground_truth(session, table, fault_index)
            assert fault_index in session.candidates
            assert session.exhausted and session.converged

    def test_narrowing_is_monotone(self, artifact_a):
        _, built = artifact_a
        with scoped_registry():
            session = DiagnosisSession(built.dictionary)
            drive_to_ground_truth(session, built.table, 7)
        sizes = [update.after for update in session.history]
        assert sizes == sorted(sizes, reverse=True)
        assert session.history[0].before == built.table.n_faults

    def test_same_different_semantics_match_the_row_bits(self, artifact_a):
        # One observation on test j must keep exactly the faults whose
        # dictionary row bit agrees with the observed side of the baseline.
        _, built = artifact_a
        dictionary = built.dictionary
        table = built.table
        j = 0
        signature = table.full_row(5)[j]
        observed_bit = 0 if signature == dictionary.baselines[j] else 1
        with scoped_registry():
            session = DiagnosisSession(dictionary)
            session.observe(j, signature)
        expected = [
            i for i in range(table.n_faults)
            if (dictionary.row(i) >> j) & 1 == observed_bit
        ]
        assert session.candidates == expected

    def test_contradictory_reobservation_empties_the_set(self, artifact_a):
        _, built = artifact_a
        dictionary = built.dictionary
        baseline = dictionary.baselines[0]
        # An observed signature on the other side of the baseline.
        flipped = PASS if baseline != PASS else (0,)
        with scoped_registry():
            session = DiagnosisSession(dictionary)
            session.observe(0, baseline)
            session.observe(0, flipped)
        assert session.candidates == []
        assert session.converged

    def test_observe_validates_indices(self, artifact_a):
        _, built = artifact_a
        with scoped_registry():
            session = DiagnosisSession(built.dictionary)
            with pytest.raises(ValueError, match="test index"):
                session.observe(99, PASS)
            with pytest.raises(ValueError, match="output index"):
                session.observe(0, (99,))


class TestOtherOrganisations:
    def test_passfail_narrows_on_detection_only(self):
        table = random_table(16, 8, 2, seed=9)
        dictionary = PassFailDictionary(table)
        with scoped_registry():
            session = DiagnosisSession(dictionary)
            session.observe(0, (0,))  # any failing signature: "detected"
        expected = [
            i for i in range(table.n_faults)
            if table.signature(i, 0) != PASS
        ]
        assert session.candidates == expected

    def test_full_requires_exact_signature(self):
        table = random_table(16, 8, 2, seed=9)
        dictionary = FullDictionary(table)
        signature = table.signature(3, 0)
        with scoped_registry():
            session = DiagnosisSession(dictionary)
            session.observe(0, signature)
        expected = [
            i for i in range(table.n_faults)
            if table.signature(i, 0) == signature
        ]
        assert session.candidates == expected


class TestConvergence:
    def test_stall_counter_flips_converged(self, artifact_a):
        _, built = artifact_a
        dictionary = built.dictionary
        with scoped_registry() as registry:
            session = DiagnosisSession(dictionary, stall_after=2)
            # Re-observing the same baseline-side signature never narrows
            # further, so every repeat is a stall.
            session.observe(0, dictionary.baselines[0])
            assert session.stalled == 0
            session.observe(0, dictionary.baselines[0])
            session.observe(0, dictionary.baselines[0])
            assert session.stalled == 2
            assert session.converged and not session.exhausted
            assert registry.counters["serve.sessions_converged"].value == 1
            # Converged is counted once, even as observations continue.
            session.observe(0, dictionary.baselines[0])
            assert registry.counters["serve.sessions_converged"].value == 1
            assert registry.counters["serve.session_observations"].value == 4

    def test_stall_after_validation(self, artifact_a):
        _, built = artifact_a
        with scoped_registry():
            with pytest.raises(ValueError, match="stall_after"):
                DiagnosisSession(built.dictionary, stall_after=0)

    def test_report_shape(self, artifact_a):
        _, built = artifact_a
        with scoped_registry():
            session = DiagnosisSession(built.dictionary)
            drive_to_ground_truth(session, built.table, 2)
        report = session.report()
        assert report["observations"] == built.table.n_tests
        assert report["candidates"] == len(session.candidates)
        assert report["narrowing"] == [u.after for u in session.history]
        assert report["exhausted"] is True


class TestSuggestion:
    def test_suggested_test_splits_best(self, artifact_a):
        _, built = artifact_a
        dictionary = built.dictionary
        table = built.table
        with scoped_registry():
            session = DiagnosisSession(dictionary)
            suggestion = session.suggest_next_test()
        assert suggestion is not None

        def split_score(j):
            ones = sum(
                (dictionary.row(i) >> j) & 1 for i in range(table.n_faults)
            )
            zeros = table.n_faults - ones
            return ones * zeros

        best = max(split_score(j) for j in range(table.n_tests))
        assert split_score(suggestion) == best
        # Lowest index wins ties.
        assert suggestion == min(
            j for j in range(table.n_tests) if split_score(j) == best
        )

    def test_observed_tests_are_not_suggested(self, artifact_a):
        _, built = artifact_a
        with scoped_registry():
            session = DiagnosisSession(built.dictionary)
            seen = set()
            while (j := session.suggest_next_test()) is not None:
                assert j not in seen
                seen.add(j)
                session.observe(j, built.table.full_row(4)[j])
        assert session.converged

    def test_adaptive_order_converges_no_slower_than_linear(self, artifact_a):
        # The greedy suggestion order needs at most as many observations
        # as blind 0..n-1 order to reach the same final candidate set.
        _, built = artifact_a
        table = built.table
        row = table.full_row(11)

        with scoped_registry():
            linear = DiagnosisSession(built.dictionary)
            drive_to_ground_truth(linear, table, 11)
            final = set(linear.candidates)

            adaptive = DiagnosisSession(built.dictionary)
            steps = 0
            while set(adaptive.candidates) != final:
                j = adaptive.suggest_next_test()
                if j is None:
                    break
                adaptive.observe(j, row[j])
                steps += 1
        assert set(adaptive.candidates) == final
        assert steps <= table.n_tests

    def test_no_suggestion_when_resolved(self, artifact_a):
        _, built = artifact_a
        with scoped_registry():
            session = DiagnosisSession(built.dictionary)
            session.candidates = [0]
            assert session.suggest_next_test() is None

    def test_tie_break_is_lowest_test_index(self):
        """Regression for the docstring/behavior drift: equal split
        scores must resolve to the lowest test index, deterministically."""
        # Two identical columns: test 0 and test 1 split 2-vs-2 alike.
        from repro.faults import Fault
        from repro.sim import ResponseTable, TestSet

        faults = [Fault(f"f{i}", 0) for i in range(4)]
        tests = TestSet(("i0",), [0, 0])
        failing = [{0: (0,), 1: (0,)}, {0: (0,), 1: (0,)}, {}, {}]
        table = ResponseTable(("z0",), faults, tests, failing, {"z0": 0})
        dictionary = FullDictionary(table)
        with scoped_registry():
            session = DiagnosisSession(dictionary)
            assert session.suggest_next_test() == 0
            assert session.suggest_next_test("entropy") == 0
            # Once test 0 is observed it is never suggested again.
            session.observe(0, (0,))
            assert session.suggest_next_test() != 0

    def test_unknown_strategy_rejected(self, artifact_a):
        _, built = artifact_a
        with scoped_registry():
            session = DiagnosisSession(built.dictionary)
            with pytest.raises(ValueError, match="strategy"):
                session.suggest_next_test("oracle")

    def test_entropy_prefers_the_finer_split(self):
        """A 3-way even split must beat a lopsided 2-way split under
        entropy, while greedy may prefer either."""
        from repro.faults import Fault
        from repro.sim import ResponseTable, TestSet

        # 6 faults; test 0 splits {2,2,2} by signature, test 1 splits {5,1}.
        faults = [Fault(f"f{i}", 0) for i in range(6)]
        tests = TestSet(("i0",), [0, 0])
        failing = [
            {0: (0,), 1: (0,)},
            {0: (0,), 1: (0,)},
            {0: (1,), 1: (0,)},
            {0: (1,), 1: (0,)},
            {1: (0,)},
            {},
        ]
        table = ResponseTable(("z0", "z1"), faults, tests, failing, {"z0": 0, "z1": 0})
        dictionary = FullDictionary(table)
        with scoped_registry():
            session = DiagnosisSession(dictionary)
            assert session.suggest_next_test("entropy") == 0


class TestFlipBudget:
    def test_budget_zero_is_the_classic_filter(self, artifact_a):
        """flip_budget=0 sessions match the default session's candidate
        trajectory exactly, observation for observation."""
        _, built = artifact_a
        table = built.table
        row = table.full_row(6)
        with scoped_registry():
            classic = DiagnosisSession(built.dictionary)
            budgeted = DiagnosisSession(built.dictionary, flip_budget=0)
            for j, signature in enumerate(row):
                classic.observe(j, signature)
                budgeted.observe(j, signature)
                assert classic.candidates == budgeted.candidates

    def test_candidate_survives_within_budget(self, artifact_a):
        _, built = artifact_a
        dictionary = built.dictionary
        baseline = dictionary.baselines[0]
        flipped = PASS if baseline != PASS else (0,)
        with scoped_registry():
            session = DiagnosisSession(dictionary, flip_budget=1)
            session.observe(0, baseline)
            # The contradictory re-observation costs every survivor one
            # mismatch but eliminates none of them at budget 1.
            survivors = list(session.candidates)
            session.observe(0, flipped)
            assert session.candidates == survivors
            # A second contradiction exceeds the budget and empties it.
            session.observe(0, baseline)
            session.observe(0, flipped)
            assert session.candidates == []

    def test_ranked_candidates_order_and_annotation(self):
        table = random_table(12, 6, 2, seed=3)
        dictionary = FullDictionary(table)
        row = table.full_row(2)
        with scoped_registry():
            session = DiagnosisSession(dictionary, flip_budget=1)
            for j, signature in enumerate(row):
                session.observe(j, signature)
        ranked = session.ranked_candidates()
        assert [pair for pair in ranked] == sorted(
            ranked, key=lambda pair: (pair[1], pair[0])
        )
        by_index = dict(ranked)
        assert by_index[2] == 0  # ground truth used no flips
        assert all(flips <= 1 for flips in by_index.values())

    def test_negative_budget_rejected(self, artifact_a):
        _, built = artifact_a
        with scoped_registry():
            with pytest.raises(ValueError, match="flip_budget"):
                DiagnosisSession(built.dictionary, flip_budget=-1)
