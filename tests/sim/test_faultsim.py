"""Tests for bit-parallel fault simulation.

The decisive check compares the event-driven cone simulation against the
brute-force alternative: structurally inject the fault and re-simulate the
whole circuit.
"""

import pytest

from repro.atpg import injected_copy
from repro.circuit import generate_netlist, full_scan
from repro.faults import Fault, all_faults, collapse
from repro.sim import FaultSimulator, TestSet, iter_bits, output_words
from tests.conftest import tiny_spec


def brute_force_diffs(netlist, tests, fault):
    """Reference: per-output XOR between good and structurally-faulty circuits."""
    good = output_words(netlist, tests)
    bad = output_words(injected_copy(netlist, fault), tests)
    return {
        net: good[net] ^ bad[net] for net in good if good[net] != bad[net]
    }


class TestAgainstBruteForce:
    def test_c17_all_faults(self, c17):
        tests = TestSet.exhaustive(c17.inputs)
        simulator = FaultSimulator(c17, tests)
        for fault in all_faults(c17):
            assert simulator.output_diffs(fault) == brute_force_diffs(c17, tests, fault)

    def test_s27_all_faults(self, s27_scan):
        tests = TestSet.random(s27_scan.inputs, 48, seed=2)
        simulator = FaultSimulator(s27_scan, tests)
        for fault in all_faults(s27_scan):
            assert simulator.output_diffs(fault) == brute_force_diffs(
                s27_scan, tests, fault
            )

    @pytest.mark.parametrize("seed", range(3))
    def test_random_circuits(self, seed):
        netlist, _ = full_scan(generate_netlist(tiny_spec(seed + 50, gates=25)))
        tests = TestSet.random(netlist.inputs, 32, seed=seed)
        simulator = FaultSimulator(netlist, tests)
        for fault in all_faults(netlist):
            assert simulator.output_diffs(fault) == brute_force_diffs(
                netlist, tests, fault
            )


class TestDerivedQueries:
    def test_detection_word_is_or_of_diffs(self, c17):
        tests = TestSet.exhaustive(c17.inputs)
        simulator = FaultSimulator(c17, tests)
        fault = Fault("10", 1)
        word = 0
        for diff in simulator.output_diffs(fault).values():
            word |= diff
        assert simulator.detection_word(fault) == word
        assert word  # c17 has no undetectable fault

    def test_detects_single_pattern(self, c17):
        tests = TestSet.exhaustive(c17.inputs)
        simulator = FaultSimulator(c17, tests)
        fault = Fault("10", 1)
        word = simulator.detection_word(fault)
        for j in range(len(tests)):
            assert simulator.detects(j, fault) == bool((word >> j) & 1)

    def test_coverage_and_counts(self, c17, c17_faults):
        tests = TestSet.exhaustive(c17.inputs)
        simulator = FaultSimulator(c17, tests)
        assert simulator.coverage(c17_faults) == 1.0
        counts = simulator.detection_counts(c17_faults)
        assert all(count > 0 for count in counts.values())
        assert simulator.coverage([]) == 1.0

    def test_empty_test_set_detects_nothing(self, c17, c17_faults):
        simulator = FaultSimulator(c17, TestSet(c17.inputs))
        assert simulator.detected_faults(c17_faults) == []


class TestErrors:
    def test_sequential_rejected(self, s27):
        with pytest.raises(Exception, match="sequential"):
            FaultSimulator(s27, TestSet.random(s27.inputs, 2, seed=0))

    def test_unknown_fault_line(self, c17):
        simulator = FaultSimulator(c17, TestSet.exhaustive(c17.inputs))
        with pytest.raises(ValueError, match="unknown net"):
            simulator.output_diffs(Fault("ghost", 0))
        with pytest.raises(ValueError, match="unknown pin"):
            simulator.output_diffs(Fault("3", 0, input_of="ghost"))


def test_iter_bits():
    assert list(iter_bits(0)) == []
    assert list(iter_bits(0b1011)) == [0, 1, 3]
    big = (1 << 200) | 1
    assert list(iter_bits(big)) == [0, 200]
