"""Tests for bit-parallel fault-free simulation."""

import pytest

from repro.circuit import GateType, from_gates
from repro.sim import (
    SimulationError,
    TestSet,
    output_vectors,
    output_words,
    simulate,
    simulate_single,
)


def c17_reference(a, b, c, d, e):
    """Direct NAND-level model of c17: inputs (1, 2, 3, 6, 7)."""
    n10 = 1 - (a & c)
    n11 = 1 - (c & d)
    n16 = 1 - (b & n11)
    n19 = 1 - (n11 & e)
    return (1 - (n10 & n16), 1 - (n16 & n19))


class TestC17GroundTruth:
    def test_exhaustive_against_reference(self, c17):
        tests = TestSet.exhaustive(c17.inputs)
        vectors = output_vectors(c17, tests)
        for j in range(len(tests)):
            a, b, c, d, e = (tests.value(j, net) for net in ("1", "2", "3", "6", "7"))
            expected = c17_reference(a, b, c, d, e)
            assert vectors[j] == f"{expected[0]}{expected[1]}"


class TestScalarVsParallel:
    def test_single_matches_parallel(self, s27_scan):
        tests = TestSet.random(s27_scan.inputs, 16, seed=3)
        words = simulate(s27_scan, tests)
        for j in range(len(tests)):
            scalar = simulate_single(s27_scan, tests.assignment(j))
            for net, word in words.items():
                assert scalar[net] == (word >> j) & 1

    def test_tiny_circuits(self, tiny_circuits):
        for netlist in tiny_circuits:
            tests = TestSet.random(netlist.inputs, 8, seed=11)
            words = simulate(netlist, tests)
            scalar = simulate_single(netlist, tests.assignment(5))
            for net, word in words.items():
                assert scalar[net] == (word >> 5) & 1


class TestErrors:
    def test_sequential_rejected(self, s27):
        tests = TestSet.random(s27.inputs, 4, seed=0)
        with pytest.raises(SimulationError, match="sequential"):
            simulate(s27, tests)

    def test_missing_input_stimulus(self, c17):
        tests = TestSet(["1", "2"], [0])
        with pytest.raises(SimulationError, match="lacks inputs"):
            simulate(c17, tests)


class TestConstGates:
    def test_constants_simulate(self):
        netlist = from_gates(
            "const",
            inputs=["a"],
            gates=[
                ("k0", GateType.CONST0, []),
                ("k1", GateType.CONST1, []),
                ("y", GateType.OR, ["a", "k0"]),
                ("z", GateType.AND, ["a", "k1"]),
            ],
            outputs=["y", "z"],
        )
        tests = TestSet(["a"], [0, 1])
        words = output_words(netlist, tests)
        assert words["y"] == 0b10
        assert words["z"] == 0b10

    def test_empty_test_set(self, c17):
        tests = TestSet(c17.inputs)
        words = simulate(c17, tests)
        assert all(word == 0 for word in words.values())
