"""Tests for the TestSet container."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import TestSet


class TestConstruction:
    def test_duplicate_inputs_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TestSet(["a", "a"])

    def test_append_range_checked(self):
        tests = TestSet(["a", "b"])
        tests.append(3)
        with pytest.raises(ValueError):
            tests.append(4)
        with pytest.raises(ValueError):
            tests.append(-1)

    def test_append_assignment(self):
        tests = TestSet(["a", "b", "c"])
        tests.append_assignment({"a": 1, "b": 0, "c": 1})
        assert tests[0] == 0b101
        with pytest.raises(ValueError, match="missing"):
            tests.append_assignment({"a": 1})

    def test_append_string(self):
        tests = TestSet(["a", "b", "c"])
        tests.append_string("101")
        assert tests.value(0, "a") == 1
        assert tests.value(0, "b") == 0
        assert tests.value(0, "c") == 1
        with pytest.raises(ValueError):
            tests.append_string("10")
        with pytest.raises(ValueError):
            tests.append_string("1x1")

    def test_string_roundtrip(self):
        tests = TestSet(["a", "b", "c", "d"])
        tests.append_string("0110")
        assert tests.as_string(0) == "0110"

    def test_extend_requires_same_inputs(self):
        a = TestSet(["x"], [0, 1])
        b = TestSet(["y"], [1])
        with pytest.raises(ValueError):
            a.extend(b)
        c = TestSet(["x"], [1])
        a.extend(c)
        assert len(a) == 3


class TestFactories:
    def test_random_deterministic(self):
        a = TestSet.random(["a", "b", "c"], 10, seed=5)
        b = TestSet.random(["a", "b", "c"], 10, seed=5)
        assert a == b
        assert a != TestSet.random(["a", "b", "c"], 10, seed=6)

    def test_exhaustive(self):
        tests = TestSet.exhaustive(["a", "b"])
        assert list(tests) == [0, 1, 2, 3]

    def test_exhaustive_refuses_wide(self):
        with pytest.raises(ValueError):
            TestSet.exhaustive([f"i{k}" for k in range(21)])


class TestTransforms:
    def test_deduplicated_keeps_first(self):
        tests = TestSet(["a", "b"], [1, 2, 1, 3, 2])
        assert list(tests.deduplicated()) == [1, 2, 3]

    def test_reordered(self):
        tests = TestSet(["a", "b"], [0, 1, 2])
        assert list(tests.reordered([2, 0, 1])) == [2, 0, 1]
        with pytest.raises(ValueError):
            tests.reordered([0, 0, 1])

    def test_subset(self):
        tests = TestSet(["a", "b"], [0, 1, 2, 3])
        assert list(tests.subset([3, 1])) == [3, 1]

    def test_assignment_view(self):
        tests = TestSet(["a", "b"], [0b10])
        assert tests.assignment(0) == {"a": 0, "b": 1}


@given(
    vectors=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=30)
)
def test_input_words_transpose_property(vectors):
    """Property: input_words is the exact transpose of the test list."""
    inputs = [f"i{k}" for k in range(8)]
    tests = TestSet(inputs, vectors)
    words = tests.input_words()
    for j, vector in enumerate(vectors):
        for position, net in enumerate(inputs):
            assert ((words[net] >> j) & 1) == ((vector >> position) & 1)


@given(
    vectors=st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=20)
)
def test_string_views_consistent(vectors):
    """Property: as_string/assignment/value agree for every test."""
    inputs = [f"i{k}" for k in range(6)]
    tests = TestSet(inputs, vectors)
    for j in range(len(tests)):
        text = tests.as_string(j)
        assignment = tests.assignment(j)
        for position, net in enumerate(inputs):
            assert int(text[position]) == assignment[net] == tests.value(j, net)
