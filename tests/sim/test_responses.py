"""Tests for the ResponseTable (z_i,j signature capture)."""

import pytest

from repro.faults import collapse
from repro.sim import PASS, FaultSimulator, ResponseTable, TestSet


@pytest.fixture(scope="module")
def c17_table(c17, c17_faults):
    tests = TestSet.exhaustive(c17.inputs)
    return ResponseTable.build(c17, c17_faults, tests)


class TestSignatures:
    def test_dimensions(self, c17_table, c17_faults):
        assert c17_table.n_faults == len(c17_faults)
        assert c17_table.n_tests == 32
        assert c17_table.n_outputs == 2

    def test_signature_matches_detection(self, c17, c17_table, c17_faults):
        simulator = FaultSimulator(c17, c17_table.tests)
        for i, fault in enumerate(c17_faults):
            word = simulator.detection_word(fault)
            for j in range(c17_table.n_tests):
                detected = bool((word >> j) & 1)
                assert (c17_table.signature(i, j) != PASS) == detected
                assert c17_table.detects(j, i) == detected

    def test_detection_word_equivalence(self, c17, c17_table, c17_faults):
        simulator = FaultSimulator(c17, c17_table.tests)
        for i, fault in enumerate(c17_faults):
            assert c17_table.detection_word(i) == simulator.detection_word(fault)

    def test_full_row_length(self, c17_table):
        row = c17_table.full_row(0)
        assert len(row) == c17_table.n_tests


class TestVectors:
    def test_good_vector_matches_simulation(self, c17, c17_table):
        from repro.sim import output_vectors

        vectors = output_vectors(c17, c17_table.tests)
        for j in range(c17_table.n_tests):
            assert c17_table.good_vector(j) == vectors[j]

    def test_response_vector_flips_failing_outputs(self, c17_table):
        for i in range(c17_table.n_faults):
            for j in range(c17_table.n_tests):
                good = c17_table.good_vector(j)
                faulty = c17_table.response_vector(i, j)
                flips = {o for o in range(len(good)) if good[o] != faulty[o]}
                assert tuple(sorted(flips)) == c17_table.signature(i, j)

    def test_signature_to_vector_inverse(self, c17_table):
        for j in range(0, c17_table.n_tests, 7):
            for sig in c17_table.candidate_signatures(j):
                vector = c17_table.signature_to_vector(sig, j)
                good = c17_table.good_vector(j)
                recovered = tuple(
                    o for o in range(len(good)) if vector[o] != good[o]
                )
                assert recovered == sig


class TestGrouping:
    def test_groups_partition_detected(self, c17_table):
        for j in range(c17_table.n_tests):
            groups = c17_table.failing_groups(j)
            flat = [i for group in groups for i in group]
            assert sorted(flat) == sorted(c17_table.detected_indices(j))
            assert len(set(flat)) == len(flat)

    def test_group_members_share_signature(self, c17_table):
        for j in range(c17_table.n_tests):
            for sig, group in zip(
                c17_table.failing_signatures(j), c17_table.failing_groups(j)
            ):
                assert sig != PASS
                for i in group:
                    assert c17_table.signature(i, j) == sig

    def test_candidates_start_with_pass(self, c17_table):
        for j in range(c17_table.n_tests):
            candidates = c17_table.candidate_signatures(j)
            assert candidates[0] == PASS
            assert len(candidates) == len(set(candidates))


class TestSubset:
    def test_subset_consistency(self, c17, c17_faults, c17_table):
        chosen = [3, 17, 0, 31]
        sub = c17_table.subset(chosen)
        assert sub.n_tests == 4
        for i in range(sub.n_faults):
            for new_j, old_j in enumerate(chosen):
                assert sub.signature(i, new_j) == c17_table.signature(i, old_j)
                assert sub.good_vector(new_j) == c17_table.good_vector(old_j)

    def test_subset_matches_rebuild(self, c17, c17_faults, c17_table):
        chosen = [1, 2, 8]
        sub = c17_table.subset(chosen)
        rebuilt = ResponseTable.build(c17, c17_faults, c17_table.tests.subset(chosen))
        for i in range(sub.n_faults):
            assert sub.full_row(i) == rebuilt.full_row(i)
