"""Tests for sequential fault simulation and sequence dictionaries."""

import pytest

from repro.faults import Fault, collapse
from repro.sim.seqfaultsim import (
    random_sequences,
    sequential_detection_word,
    sequential_output_diffs,
    sequential_outputs,
    sequential_response_table,
)
from repro.dictionaries import FullDictionary, PassFailDictionary
from tests.util import build_sd


@pytest.fixture(scope="module")
def s27_sequences(s27):
    return random_sequences(s27, count=16, length=6, seed=3)


class TestSequentialFaultSim:
    def test_good_outputs_match_scalar(self, s27, s27_sequences):
        from repro.sim import simulate_sequence

        outputs = sequential_outputs(s27, s27_sequences)
        for s in (0, 7, 15):
            scalar = simulate_sequence(s27, s27_sequences[s])
            for cycle, words in enumerate(outputs):
                got = "".join(
                    str((words[net] >> s) & 1) for net in s27.outputs
                )
                assert got == scalar[cycle]

    def test_fault_free_fault_has_no_diffs(self, s27, s27_sequences):
        # A fault on a line tied to its own stuck value in every frame is
        # not generally possible, but an undetectable-by-these-sequences
        # fault must produce an empty diff consistently.
        word = sequential_detection_word(s27, s27_sequences, Fault("G17", 1))
        diffs = sequential_output_diffs(s27, s27_sequences, Fault("G17", 1))
        combined = 0
        for cycle in diffs:
            for diff in cycle.values():
                combined |= diff
        assert combined == word

    def test_sequence_length_checked(self, s27):
        bad = [
            [{net: 0 for net in s27.inputs}] * 3,
            [{net: 0 for net in s27.inputs}] * 2,
        ]
        with pytest.raises(ValueError, match="same length"):
            sequential_outputs(s27, bad)

    def test_state_faults_need_time_to_show(self, s27):
        """A fault on a flip-flop output may be invisible on cycle 0 but
        detected later — the sequential dimension matters."""
        sequences = random_sequences(s27, count=32, length=8, seed=9)
        fault = Fault("G5", 1)  # a state element
        diffs = sequential_output_diffs(s27, sequences, fault)
        by_cycle = [
            any(diff for diff in cycle.values()) for cycle in diffs
        ]
        assert any(by_cycle), "stuck state bit must eventually be visible"


class TestSequenceResponseTable:
    def test_table_dimensions(self, s27, s27_sequences):
        faults = collapse(s27)[:12]
        table = sequential_response_table(s27, s27_sequences, faults)
        assert table.n_tests == len(s27_sequences)
        assert table.n_outputs == 6 * len(s27.outputs)
        assert table.n_faults == 12

    def test_detection_agrees_with_direct_sim(self, s27, s27_sequences):
        faults = collapse(s27)[:12]
        table = sequential_response_table(s27, s27_sequences, faults)
        for i, fault in enumerate(faults):
            assert table.detection_word(i) == sequential_detection_word(
                s27, s27_sequences, fault
            )

    def test_dictionaries_apply_unchanged(self, s27, s27_sequences):
        """The headline extension: same/different over sequences."""
        faults = [f for f in collapse(s27)]
        table = sequential_response_table(s27, s27_sequences, faults)
        full = FullDictionary(table)
        passfail = PassFailDictionary(table)
        samediff, _ = build_sd(table, calls=10, seed=0)
        assert (
            full.indistinguished_pairs()
            <= samediff.indistinguished_pairs()
            <= passfail.indistinguished_pairs()
        )

    def test_empty_sequences_rejected(self, s27):
        with pytest.raises(ValueError, match="at least one"):
            sequential_response_table(s27, [], [])
