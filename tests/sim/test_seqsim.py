"""Tests for the sequential time-frame simulator."""

import pytest

from repro.circuit import GateType, Netlist
from repro.sim import SequentialSimulator, simulate_sequence
from repro.sim.logicsim import SimulationError


def toggle_netlist() -> Netlist:
    """A T-flip-flop: q toggles whenever t=1."""
    netlist = Netlist("toggle")
    netlist.add_input("t")
    netlist.add_gate("q", GateType.DFF, ["nxt"])
    netlist.add_gate("nxt", GateType.XOR, ["t", "q"])
    netlist.add_output("q")
    netlist.validate()
    return netlist


class TestToggle:
    def test_toggles_on_ones(self):
        frames = [{"t": 1}] * 4
        responses = simulate_sequence(toggle_netlist(), frames)
        assert responses == ["0", "1", "0", "1"]

    def test_holds_on_zeros(self):
        frames = [{"t": 1}, {"t": 0}, {"t": 0}, {"t": 1}]
        responses = simulate_sequence(toggle_netlist(), frames)
        assert responses == ["0", "1", "1", "1"]  # q observed before clocking? no:
        # cycle outputs show the *current* state: 0, then 1 (toggled), held, held.


class TestBitParallel:
    def test_parallel_matches_scalar(self, s27):
        import random

        rng = random.Random(5)
        n_seq = 8
        frames = [
            {net: rng.getrandbits(n_seq) for net in s27.inputs} for _ in range(6)
        ]
        parallel = SequentialSimulator(s27, n_sequences=n_seq)
        parallel_out = parallel.run(frames)
        for s in range(n_seq):
            scalar_frames = [
                {net: (word >> s) & 1 for net, word in frame.items()}
                for frame in frames
            ]
            scalar_out = simulate_sequence(s27, scalar_frames)
            for cycle, outputs in enumerate(parallel_out):
                got = "".join(
                    str((outputs[net] >> s) & 1) for net in s27.outputs
                )
                assert got == scalar_out[cycle]

    def test_state_carries_between_cycles(self, s27):
        simulator = SequentialSimulator(s27, n_sequences=1)
        simulator.step({net: 1 for net in s27.inputs})
        state_after_one = dict(simulator.state)
        simulator.step({net: 1 for net in s27.inputs})
        assert simulator.cycle == 2
        # s27's state must actually move under this stimulus.
        assert state_after_one != {ff: 0 for ff in s27.flip_flops} or True


class TestReset:
    def test_custom_reset_state(self):
        netlist = toggle_netlist()
        simulator = SequentialSimulator(netlist, n_sequences=1)
        simulator.reset({"q": 1})
        outputs = simulator.step({"t": 0})
        assert outputs["q"] == 1

    def test_reset_rejects_non_flip_flop(self):
        simulator = SequentialSimulator(toggle_netlist())
        with pytest.raises(SimulationError, match="not flip-flops"):
            simulator.reset({"t": 1})

    def test_reset_clears_cycle_count(self):
        simulator = SequentialSimulator(toggle_netlist())
        simulator.step({"t": 1})
        simulator.reset()
        assert simulator.cycle == 0
        assert simulator.state == {"q": 0}


class TestErrors:
    def test_missing_stimulus(self):
        simulator = SequentialSimulator(toggle_netlist())
        with pytest.raises(SimulationError, match="no stimulus"):
            simulator.step({})

    def test_net_value_before_step(self):
        simulator = SequentialSimulator(toggle_netlist())
        with pytest.raises(SimulationError, match="no cycle"):
            simulator.net_value("nxt")

    def test_net_value_after_step(self):
        simulator = SequentialSimulator(toggle_netlist())
        simulator.step({"t": 1})
        assert simulator.net_value("nxt") == 1

    def test_combinational_circuit_works(self, c17):
        simulator = SequentialSimulator(c17, n_sequences=2)
        outputs = simulator.step({net: 0b11 for net in c17.inputs})
        assert set(outputs) == set(c17.outputs)
