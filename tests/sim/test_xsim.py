"""Tests for three-valued simulation and test-cube utilities."""

import itertools

import pytest

from repro.sim.logicsim import SimulationError, simulate_single
from repro.sim.xsim import (
    UNKNOWN,
    cube_conflicts,
    determined_outputs,
    merge_cubes,
    required_inputs,
    simulate3,
)


class TestSimulate3:
    def test_fully_specified_matches_binary(self, c17):
        for vector in range(0, 32, 5):
            assignment = {
                net: (vector >> i) & 1 for i, net in enumerate(c17.inputs)
            }
            three = simulate3(c17, assignment)
            binary = simulate_single(c17, assignment)
            assert all(three[net] == binary[net] for net in c17.gates)

    def test_soundness_of_determined_values(self, c17):
        """Property: a 0/1 result holds for every completion of the X inputs."""
        partial = {"1": 0, "3": 1}  # leave 2, 6, 7 unknown
        three = simulate3(c17, partial)
        free = [net for net in c17.inputs if net not in partial]
        for completion in itertools.product((0, 1), repeat=len(free)):
            full = dict(partial)
            full.update(dict(zip(free, completion)))
            binary = simulate_single(c17, full)
            for net, value in three.items():
                if value != UNKNOWN:
                    assert binary[net] == value, net

    def test_empty_assignment_all_x_inputs(self, c17):
        three = simulate3(c17, {})
        assert all(three[net] == UNKNOWN for net in c17.inputs)

    def test_controlling_value_determines_output(self, c17):
        # Input 1 = 0 forces NAND gate 10 to 1 regardless of input 3.
        three = simulate3(c17, {"1": 0})
        assert three["10"] == 1

    def test_rejects_non_inputs(self, c17):
        with pytest.raises(SimulationError, match="not primary inputs"):
            simulate3(c17, {"10": 1})

    def test_rejects_bad_values(self, c17):
        with pytest.raises(SimulationError, match="bad value"):
            simulate3(c17, {"1": 7})

    def test_sequential_rejected(self, s27):
        with pytest.raises(SimulationError, match="sequential"):
            simulate3(s27, {})


class TestDeterminedOutputs:
    def test_subset_of_outputs(self, c17):
        determined = determined_outputs(c17, {"1": 0, "2": 0})
        assert set(determined) <= set(c17.outputs)
        for net, value in determined.items():
            assert value in (0, 1)

    def test_full_assignment_determines_everything(self, c17):
        assignment = {net: 1 for net in c17.inputs}
        assert set(determined_outputs(c17, assignment)) == set(c17.outputs)


class TestRequiredInputs:
    def test_cone_membership(self, c17):
        required = required_inputs(c17, "10")
        assert required["1"] and required["3"]
        assert not required["7"]

    def test_unknown_net(self, c17):
        with pytest.raises(SimulationError):
            required_inputs(c17, "ghost")


class TestCubes:
    def test_conflicts(self):
        assert cube_conflicts({"a": 1}, {"a": 0})
        assert not cube_conflicts({"a": 1}, {"a": 1, "b": 0})
        assert not cube_conflicts({"a": UNKNOWN}, {"a": 0})

    def test_merge(self):
        merged = merge_cubes({"a": 1, "b": UNKNOWN}, {"b": 0, "c": 1})
        assert merged == {"a": 1, "b": 0, "c": 1}
        assert merge_cubes({"a": 1}, {"a": 0}) is None

    def test_merge_with_x_passthrough(self):
        merged = merge_cubes({"a": 0}, {"a": UNKNOWN, "b": UNKNOWN})
        assert merged == {"a": 0}
