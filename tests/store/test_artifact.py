"""Artifact format: round trips, degenerate shapes, strict validation."""

import struct

import pytest

from repro.api import DictionaryConfig, build
from repro.store import (
    FORMAT_VERSION,
    MAGIC,
    ArtifactError,
    ArtifactFormatError,
    ArtifactHashError,
    ArtifactVersionError,
    load_artifact,
    save_artifact,
    table_content_hash,
)
from tests.util import random_table


def _built(n_faults=8, n_tests=6, n_outputs=3, seed=1, density=0.5,
           kind="same-different", calls=5):
    table = random_table(n_faults, n_tests, n_outputs, seed, density=density)
    return build(
        table, kind=kind, config=DictionaryConfig(seed=0, calls1=calls)
    )


def _assert_round_trip(built, path):
    save_artifact(built, path)
    loaded = load_artifact(path)
    assert loaded.kind == built.kind
    assert loaded.config == built.config
    assert loaded.table.faults == built.table.faults
    assert loaded.table.n_tests == built.table.n_tests
    assert loaded.table.outputs == built.table.outputs
    for i in range(built.table.n_faults):
        assert loaded.table.full_row(i) == built.table.full_row(i)
    assert loaded.table.good_output_words == built.table.good_output_words
    left, right = loaded.table.interned, built.table.interned
    assert left.cols == right.cols
    assert left.sigs == right.sigs
    assert left.sig_ids == right.sig_ids
    assert left.det_words == right.det_words
    if built.kind == "same-different":
        assert loaded.dictionary.baselines == built.dictionary.baselines
        assert loaded.report.as_dict() == built.report.as_dict()
    return loaded


class TestRoundTrip:
    @pytest.mark.parametrize("kind", ["same-different", "pass-fail", "full"])
    def test_kinds(self, tmp_path, kind):
        loaded = _assert_round_trip(_built(kind=kind), tmp_path / "a.rfd")
        assert loaded.dictionary.kind == _built(kind=kind).dictionary.kind

    def test_content_hash_matches_recomputation(self, tmp_path):
        built = _built()
        written = save_artifact(built, tmp_path / "a.rfd")
        assert written == table_content_hash(built.table, built.kind, built.config)
        # Loading with the right expected hash succeeds...
        load_artifact(tmp_path / "a.rfd", expected_hash=written)
        # ...and with a wrong one refuses.
        with pytest.raises(ArtifactHashError):
            load_artifact(tmp_path / "a.rfd", expected_hash="0" * 64)

    def test_save_is_deterministic(self, tmp_path):
        built = _built()
        save_artifact(built, tmp_path / "a.rfd")
        save_artifact(built, tmp_path / "b.rfd")
        assert (tmp_path / "a.rfd").read_bytes() == (tmp_path / "b.rfd").read_bytes()


class TestDegenerateShapes:
    def test_zero_tests(self, tmp_path):
        _assert_round_trip(_built(n_tests=0, density=0.0), tmp_path / "a.rfd")

    def test_zero_faults(self, tmp_path):
        loaded = _assert_round_trip(_built(n_faults=0), tmp_path / "a.rfd")
        assert loaded.table.n_faults == 0

    def test_single_fault(self, tmp_path):
        loaded = _assert_round_trip(_built(n_faults=1), tmp_path / "a.rfd")
        assert loaded.table.n_faults == 1

    def test_all_pass_responses(self, tmp_path):
        loaded = _assert_round_trip(_built(density=0.0), tmp_path / "a.rfd")
        assert all(
            sig == () for i in range(loaded.table.n_faults)
            for sig in loaded.table.full_row(i)
        )


class TestValidation:
    def test_truncated_anywhere_raises_artifact_error(self, tmp_path):
        path = tmp_path / "a.rfd"
        save_artifact(_built(), path)
        blob = path.read_bytes()
        # Cut at a spread of offsets: inside the preamble, the header, and
        # the payload.  Every cut must surface as ArtifactError, never as
        # garbage data or a non-artifact exception.
        for cut in (0, 3, 10, 40, 69, len(blob) // 2, len(blob) - 1):
            clipped = tmp_path / f"cut{cut}.rfd"
            clipped.write_bytes(blob[:cut])
            with pytest.raises(ArtifactError):
                load_artifact(clipped)

    def test_corrupted_payload_raises(self, tmp_path):
        path = tmp_path / "a.rfd"
        save_artifact(_built(), path)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(ArtifactError):
            load_artifact(path)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "a.rfd"
        save_artifact(_built(), path)
        blob = bytearray(path.read_bytes())
        blob[:4] = b"NOPE"
        path.write_bytes(bytes(blob))
        with pytest.raises(ArtifactFormatError):
            load_artifact(path)

    def test_unknown_version(self, tmp_path):
        path = tmp_path / "a.rfd"
        save_artifact(_built(), path)
        blob = bytearray(path.read_bytes())
        blob[4:6] = struct.pack(">H", FORMAT_VERSION + 1)
        path.write_bytes(bytes(blob))
        with pytest.raises(ArtifactVersionError):
            load_artifact(path)

    def test_header_is_json_not_pickle(self, tmp_path):
        # The format must never unpickle: the bytes after the preamble are
        # a length-prefixed JSON header.
        path = tmp_path / "a.rfd"
        save_artifact(_built(), path)
        blob = path.read_bytes()
        preamble = struct.calcsize(">4sH32s32s")
        assert blob[:4] == MAGIC
        (header_len,) = struct.unpack_from(">I", blob, preamble)
        header = blob[preamble + 4 : preamble + 4 + header_len]
        import json

        doc = json.loads(header.decode("utf-8"))
        assert doc["kind"] in ("same-different", "pass-fail", "full")

    def test_missing_file(self, tmp_path):
        with pytest.raises(ArtifactError):
            load_artifact(tmp_path / "nope.rfd")
