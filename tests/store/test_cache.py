"""Build cache: hits skip fault simulation, corruption degrades to a miss."""

import pytest

from repro.api import DictionaryConfig, build
from repro.circuit import load_circuit, prepare_for_test
from repro.faults import collapse
from repro.obs import scoped_registry
from repro.sim import TestSet
from repro.store import ARTIFACT_SUFFIX, BuildCache, build_inputs_hash
from tests.util import random_table


@pytest.fixture()
def s27_inputs():
    netlist = prepare_for_test(load_circuit("s27"))
    faults = collapse(netlist)
    tests = TestSet(netlist.inputs, [17, 42, 99, 3, 122, 64, 77, 5])
    return netlist, faults, tests


def _build_s27(inputs, cache_dir):
    netlist, faults, tests = inputs
    return build(
        netlist=netlist,
        faults=faults,
        tests=tests,
        config=DictionaryConfig(seed=0, calls1=3),
        cache_dir=cache_dir,
    )


class TestBuildCache:
    def test_second_build_simulates_nothing(self, tmp_path, s27_inputs):
        """The acceptance criterion: a warm cache means zero simulator work."""
        with scoped_registry() as registry:
            cold = _build_s27(s27_inputs, tmp_path)
            assert registry.counter("faultsim.faults_simulated").value > 0
            assert registry.counter("store.cache_misses").value == 1
            assert registry.counter("store.cache_stores").value == 1
        with scoped_registry() as registry:
            warm = _build_s27(s27_inputs, tmp_path)
            assert registry.counter("faultsim.faults_simulated").value == 0
            assert registry.counter("store.cache_hits").value == 1
            assert registry.counter("store.cache_misses").value == 0
        assert warm.dictionary.baselines == cold.dictionary.baselines
        assert warm.report.as_dict() == cold.report.as_dict()
        for i in range(cold.table.n_faults):
            assert warm.table.full_row(i) == cold.table.full_row(i)

    def test_cache_file_is_content_addressed(self, tmp_path, s27_inputs):
        netlist, faults, tests = s27_inputs
        _build_s27(s27_inputs, tmp_path)
        key = build_inputs_hash(
            netlist, faults, tests, "same-different", DictionaryConfig(seed=0, calls1=3)
        )
        assert (tmp_path / f"{key}{ARTIFACT_SUFFIX}").exists()

    def test_config_change_misses(self, tmp_path, s27_inputs):
        netlist, faults, tests = s27_inputs
        _build_s27(s27_inputs, tmp_path)
        with scoped_registry() as registry:
            build(
                netlist=netlist, faults=faults, tests=tests,
                config=DictionaryConfig(seed=1, calls1=3), cache_dir=tmp_path,
            )
            assert registry.counter("store.cache_hits").value == 0
            assert registry.counter("store.cache_misses").value == 1

    def test_jobs_and_backend_do_not_change_the_key(self, tmp_path, s27_inputs):
        # Both knobs are build *mechanics* with byte-identical results, so
        # they are excluded from the cache key by design.
        _build_s27(s27_inputs, tmp_path)
        netlist, faults, tests = s27_inputs
        with scoped_registry() as registry:
            build(
                netlist=netlist, faults=faults, tests=tests,
                config=DictionaryConfig(seed=0, calls1=3, jobs=2, backend="naive"),
                cache_dir=tmp_path,
            )
            assert registry.counter("store.cache_hits").value == 1

    def test_table_and_netlist_paths_have_distinct_keys(self, tmp_path):
        table = random_table(6, 5, 2, seed=3)
        config = DictionaryConfig(seed=0, calls1=3)
        with scoped_registry() as registry:
            build(table, config=config, cache_dir=tmp_path)
            build(table, config=config, cache_dir=tmp_path)
            assert registry.counter("store.cache_hits").value == 1
            assert registry.counter("store.cache_misses").value == 1

    def test_corrupt_cache_entry_degrades_to_miss(self, tmp_path, s27_inputs):
        _build_s27(s27_inputs, tmp_path)
        entries = list(tmp_path.glob(f"*{ARTIFACT_SUFFIX}"))
        assert len(entries) == 1
        blob = bytearray(entries[0].read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        entries[0].write_bytes(bytes(blob))
        with scoped_registry() as registry:
            rebuilt = _build_s27(s27_inputs, tmp_path)
            assert registry.counter("store.cache_invalid").value == 1
            assert registry.counter("store.cache_misses").value == 1
            assert registry.counter("faultsim.faults_simulated").value > 0
        assert rebuilt.report is not None

    def test_no_scratch_files_left_behind(self, tmp_path, s27_inputs):
        _build_s27(s27_inputs, tmp_path)
        assert not list(tmp_path.glob("*.tmp"))

    def test_direct_cache_roundtrip(self, tmp_path):
        table = random_table(5, 4, 2, seed=9)
        built = build(table, config=DictionaryConfig(seed=0, calls1=2))
        cache = BuildCache(tmp_path / "nested" / "cache")
        cache.put(built, "ab" * 32)
        again = cache.get("ab" * 32)
        assert again is not None
        assert again.dictionary.baselines == built.dictionary.baselines
        assert cache.get("cd" * 32) is None
