"""Tests for the RFDC build-checkpoint record and its session lifecycle."""

from __future__ import annotations

import hashlib

import pytest

from repro.api import DictionaryConfig
from repro.dictionaries import FullDictionary, PassFailDictionary
from repro.obs import scoped_registry
from repro.parallel import RestartFold
from repro.partition import FaultPartition, total_pairs
from repro.sim import PASS
from repro.store.checkpoint import (
    CheckpointError,
    CheckpointFormatError,
    CheckpointHashError,
    CheckpointManager,
    CheckpointState,
    CheckpointVersionError,
    FORMAT_VERSION,
    MAGIC,
    load_checkpoint,
    save_checkpoint,
)
from tests.util import random_table

HASH = hashlib.sha256(b"checkpoint-test").hexdigest()
OTHER_HASH = hashlib.sha256(b"different-inputs").hexdigest()


def small_state(n_faults=6, n_tests=3) -> CheckpointState:
    partition = FaultPartition(range(n_faults))
    partition.split(range(n_faults // 2))
    return CheckpointState(
        phase="procedure1",
        kind="same-different",
        build={"seed": 0, "calls1": 5, "lower": 10, "procedure2": True},
        n_faults=n_faults,
        n_tests=n_tests,
        calls_made=4,
        stale=2,
        best_distinguished=partition.distinguished(),
        best_baselines=[PASS, (0,), (1, 2)][:n_tests],
        partition=partition.to_doc(),
    )


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        path = tmp_path / "state.rfdc"
        written = save_checkpoint(small_state(), path, HASH)
        assert path.stat().st_size == written
        state = load_checkpoint(path, HASH)
        assert state.calls_made == 4
        assert state.stale == 2
        assert state.best_baselines == [PASS, (0,), (1, 2)]
        assert FaultPartition.from_doc(state.partition).sizes() == [3, 3]

    def test_save_is_atomic(self, tmp_path):
        path = tmp_path / "state.rfdc"
        save_checkpoint(small_state(), path, HASH)
        save_checkpoint(small_state(), path, HASH)
        assert list(tmp_path.iterdir()) == [path]  # no .tmp left behind

    def test_load_without_expected_hash_skips_binding(self, tmp_path):
        path = tmp_path / "state.rfdc"
        save_checkpoint(small_state(), path, HASH)
        assert load_checkpoint(path).calls_made == 4


class TestStrictValidation:
    def test_truncated_file(self, tmp_path):
        path = tmp_path / "state.rfdc"
        save_checkpoint(small_state(), path, HASH)
        path.write_bytes(path.read_bytes()[:40])
        with pytest.raises(CheckpointFormatError, match="truncated"):
            load_checkpoint(path, HASH)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "state.rfdc"
        save_checkpoint(small_state(), path, HASH)
        blob = bytearray(path.read_bytes())
        blob[:4] = b"NOPE"
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointFormatError, match="magic"):
            load_checkpoint(path, HASH)

    def test_unknown_version(self, tmp_path):
        path = tmp_path / "state.rfdc"
        save_checkpoint(small_state(), path, HASH)
        blob = bytearray(path.read_bytes())
        blob[4:6] = (FORMAT_VERSION + 1).to_bytes(2, "big")
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointVersionError, match="version"):
            load_checkpoint(path, HASH)

    def test_flipped_body_bit(self, tmp_path):
        path = tmp_path / "state.rfdc"
        save_checkpoint(small_state(), path, HASH)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0x01
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointFormatError, match="checksum"):
            load_checkpoint(path, HASH)

    def test_wrong_content_hash(self, tmp_path):
        path = tmp_path / "state.rfdc"
        save_checkpoint(small_state(), path, HASH)
        with pytest.raises(CheckpointHashError, match="bound to"):
            load_checkpoint(path, OTHER_HASH)

    def test_baseline_count_mismatch(self, tmp_path):
        state = small_state()
        state.n_tests = 7  # baselines list still has 3 entries
        path = tmp_path / "state.rfdc"
        save_checkpoint(state, path, HASH)
        with pytest.raises(CheckpointFormatError, match="baselines"):
            load_checkpoint(path, HASH)

    def test_inconsistent_partition_snapshot(self, tmp_path):
        state = small_state()
        state.best_distinguished += 1  # snapshot no longer accounts for it
        path = tmp_path / "state.rfdc"
        save_checkpoint(state, path, HASH)
        with pytest.raises(CheckpointFormatError, match="indistinguished"):
            load_checkpoint(path, HASH)

    def test_partition_fault_count_mismatch(self, tmp_path):
        state = small_state()
        state.n_faults = 9
        state.best_distinguished = (
            total_pairs(9)
            - FaultPartition.from_doc(state.partition).indistinguished()
        )
        path = tmp_path / "state.rfdc"
        save_checkpoint(state, path, HASH)
        with pytest.raises(CheckpointFormatError, match="snapshot covers"):
            load_checkpoint(path, HASH)

    def test_errors_are_value_errors(self):
        assert issubclass(CheckpointError, ValueError)


def seeded_fold(table, observer=None) -> RestartFold:
    """A fold seeded the way the build seeds it: pass/fail floor, full ceiling."""
    floor = PassFailDictionary(table).distinguished_pairs()
    ceiling = total_pairs(table.n_faults) - FullDictionary(
        table
    ).indistinguished_pairs()
    assert floor < ceiling, "pick a table with real Procedure 1 work"
    return RestartFold(
        calls=5,
        ceiling=ceiling,
        baselines=[PASS] * table.n_tests,
        distinguished=floor,
        observer=observer,
    )


class TestManagerAndSession:
    def test_every_validation(self, tmp_path):
        with pytest.raises(ValueError, match="every"):
            CheckpointManager(tmp_path, every=0)

    def test_path_for_keys_by_hash(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        assert manager.path_for(HASH).name == f"{HASH}.rfdc"

    def test_session_saves_on_every_fold_by_default(self, tmp_path):
        table = random_table(50, 7, 3, seed=2, density=0.8)
        config = DictionaryConfig(seed=0, calls1=5)
        session = CheckpointManager(tmp_path).session(
            HASH, kind="same-different", config=config
        )
        session.bind(table)
        with scoped_registry() as registry:
            fold = seeded_fold(table, observer=session.on_fold)
            fold.consume(fold.best_distinguished, fold.best_baselines)
            fold.consume(fold.best_distinguished, fold.best_baselines)
            snapshot = registry.snapshot()
        assert snapshot["counters"]["build.checkpoint_saves"] == 2
        state = load_checkpoint(session.path, HASH)
        assert state.calls_made == 2
        assert state.stale == 2

    def test_every_throttles_but_final_fold_always_saves(self, tmp_path):
        table = random_table(50, 7, 3, seed=2, density=0.8)
        config = DictionaryConfig(seed=0, calls1=5)
        session = CheckpointManager(tmp_path, every=3).session(
            HASH, kind="same-different", config=config
        )
        session.bind(table)
        with scoped_registry() as registry:
            fold = seeded_fold(table, observer=session.on_fold)
            while not fold.done:
                fold.consume(fold.best_distinguished, fold.best_baselines)
            snapshot = registry.snapshot()
        # 5 stale folds: saved at calls_made 3 and (because done) 5.
        assert snapshot["counters"]["build.checkpoint_saves"] == 2
        assert load_checkpoint(session.path, HASH).calls_made == 5

    def test_restore_into_resumes_the_cursor(self, tmp_path):
        table = random_table(50, 7, 3, seed=2, density=0.8)
        config = DictionaryConfig(seed=0, calls1=5)
        manager = CheckpointManager(tmp_path)
        first = manager.session(HASH, kind="same-different", config=config)
        first.bind(table)
        fold = seeded_fold(table, observer=first.on_fold)
        fold.consume(fold.best_distinguished, fold.best_baselines)

        second = manager.session(
            HASH, kind="same-different", config=config, resume=True
        )
        second.bind(table)
        with scoped_registry() as registry:
            resumed = seeded_fold(table)
            assert second.restore_into(resumed)
            snapshot = registry.snapshot()
        assert resumed.calls_made == 1
        assert resumed.resumed_calls == 1
        assert resumed.stale == 1
        assert snapshot["counters"]["build.checkpoint_resumes"] == 1

    def test_restore_into_without_state_is_a_noop(self, tmp_path):
        table = random_table(50, 7, 3, seed=2, density=0.8)
        session = CheckpointManager(tmp_path).session(
            HASH, kind="same-different", config=DictionaryConfig()
        )
        session.bind(table)
        fold = seeded_fold(table)
        assert not session.restore_into(fold)
        assert fold.calls_made == 0

    def test_bind_rejects_dimension_mismatch(self, tmp_path):
        table = random_table(50, 7, 3, seed=2, density=0.8)
        config = DictionaryConfig(seed=0, calls1=5)
        manager = CheckpointManager(tmp_path)
        first = manager.session(HASH, kind="same-different", config=config)
        first.bind(table)
        fold = seeded_fold(table, observer=first.on_fold)
        fold.consume(fold.best_distinguished, fold.best_baselines)

        other = random_table(20, 4, 3, seed=2, density=0.8)
        second = manager.session(
            HASH, kind="same-different", config=config, resume=True
        )
        with pytest.raises(CheckpointHashError, match="table"):
            second.bind(other)

    def test_complete_removes_the_file(self, tmp_path):
        table = random_table(50, 7, 3, seed=2, density=0.8)
        session = CheckpointManager(tmp_path).session(
            HASH, kind="same-different", config=DictionaryConfig(seed=0, calls1=5)
        )
        session.bind(table)
        fold = seeded_fold(table, observer=session.on_fold)
        fold.consume(fold.best_distinguished, fold.best_baselines)
        assert session.path.exists()
        session.complete()
        assert not session.path.exists()
        session.complete()  # idempotent

    def test_resume_with_no_file_starts_fresh(self, tmp_path):
        session = CheckpointManager(tmp_path).session(
            HASH,
            kind="same-different",
            config=DictionaryConfig(),
            resume=True,
        )
        assert session.resume_state is None
