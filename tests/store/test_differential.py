"""Differential test: the artifact-served diagnoser vs the live one.

The acceptance criterion for the build/serve split: on the golden Table-6
cells, :meth:`Diagnoser.from_artifact` must reproduce *identical*
``Diagnosis`` results to a diagnoser over the live-built dictionary — the
same exact sets and the same ranked (fault, score) lists, for every
dictionary kind and for every fault in the table.
"""

import pytest

from repro.api import DictionaryConfig, build
from repro.diagnosis import Diagnoser, TwoStageDiagnoser, observe_fault
from repro.experiments.table6 import response_table_for
from repro.store import save_artifact

SEED = 0
CALLS = 5

CELLS = [("p208", "diag"), ("p208", "10det"), ("p298", "diag")]


def _cell(circuit, ttype, kind="same-different"):
    netlist, table = response_table_for(circuit, ttype, SEED)
    built = build(
        table, kind=kind, config=DictionaryConfig(seed=SEED, calls1=CALLS)
    )
    return netlist, built


@pytest.mark.parametrize("circuit,ttype", CELLS)
def test_artifact_diagnoser_matches_live(circuit, ttype, tmp_path):
    netlist, built = _cell(circuit, ttype)
    path = tmp_path / "cell.rfd"
    save_artifact(built, path)

    live = Diagnoser(built.dictionary)
    served = Diagnoser.from_artifact(path)
    assert served.source == "artifact"
    assert served.faults == live.faults

    table = built.table
    for index in range(table.n_faults):
        observed = observe_fault(netlist, table.tests, table.faults[index])
        a = live.diagnose(observed, limit=10)
        b = served.diagnose(observed, limit=10)
        assert a.exact == b.exact
        assert a.ranked == b.ranked


@pytest.mark.parametrize("kind", ["pass-fail", "full"])
def test_other_kinds_match_live(kind, tmp_path):
    netlist, built = _cell("p208", "diag", kind=kind)
    path = tmp_path / "cell.rfd"
    save_artifact(built, path)
    live = Diagnoser(built.dictionary)
    served = Diagnoser.from_artifact(path)
    table = built.table
    for index in range(0, table.n_faults, 7):
        observed = observe_fault(netlist, table.tests, table.faults[index])
        a = live.diagnose(observed, limit=10)
        b = served.diagnose(observed, limit=10)
        assert a.exact == b.exact
        assert a.ranked == b.ranked


def test_two_stage_from_artifact_needs_no_netlist(tmp_path):
    netlist, built = _cell("p208", "diag")
    path = tmp_path / "cell.rfd"
    save_artifact(built, path)

    live = TwoStageDiagnoser(netlist, built.table.tests, built.dictionary)
    served = TwoStageDiagnoser.from_artifact(path)
    assert served.netlist is None

    table = built.table
    for index in range(0, table.n_faults, 11):
        observed = observe_fault(netlist, table.tests, table.faults[index])
        a = live.diagnose(observed)
        b = served.diagnose(observed)
        assert a.screened == b.screened
        assert a.confirmed == b.confirmed
        assert a.simulated == b.simulated
