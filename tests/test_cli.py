"""Tests for the repro-fd command-line interface."""

import pytest

from repro.cli import _parse_fault, main
from repro.faults import Fault


class TestFaultParsing:
    def test_stem(self):
        assert _parse_fault("n3/sa1") == Fault("n3", 1)

    def test_pin(self):
        assert _parse_fault("n3->n7/sa0") == Fault("n3", 0, input_of="n7")

    def test_rejects_garbage(self):
        import argparse

        for bad in ("n3", "n3/sa2", "/sa1", "n3/sax"):
            with pytest.raises(argparse.ArgumentTypeError):
                _parse_fault(bad)


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "c17" in out and "p9234" in out

    def test_stats(self, capsys):
        assert main(["stats", "s27"]) == 0
        out = capsys.readouterr().out
        assert "collapsed faults" in out
        assert "flip_flops" in out

    def test_example(self, capsys):
        assert main(["example"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "bl  01  10" in out

    def test_atpg_writes_vectors(self, capsys, tmp_path):
        path = tmp_path / "vectors.txt"
        assert main(["atpg", "s27", "--ttype", "diag", "--output", str(path)]) == 0
        lines = path.read_text().splitlines()
        assert lines
        assert all(set(line) <= {"0", "1"} for line in lines)
        assert len(set(map(len, lines))) == 1  # constant width

    def test_diagnose_default_fault(self, capsys):
        assert main(["diagnose", "s27", "--calls", "2"]) == 0
        out = capsys.readouterr().out
        assert "injected:" in out
        assert "same/different" in out

    def test_diagnose_named_fault(self, capsys):
        assert main(["diagnose", "s27", "--fault", "G11/sa0", "--calls", "2"]) == 0
        out = capsys.readouterr().out
        assert "G11/sa0" in out

    def test_diagnose_unknown_fault(self, capsys):
        assert main(["diagnose", "s27", "--fault", "zz/sa0", "--calls", "2"]) == 1

    def test_table6(self, capsys):
        assert main(["table6", "p208", "--calls", "2"]) == 0
        out = capsys.readouterr().out
        assert "ind s/d rand" in out
        assert "p208" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestArtifactFlow:
    def test_pack_then_diagnose_from_artifact(self, capsys, tmp_path):
        artifact = tmp_path / "s27.rfd"
        assert main(["pack", "s27", "--calls", "2", "--out", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "packed s27/diag" in out and "hash" in out
        assert artifact.exists()

        assert main(["diagnose", "--artifact", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "serving from artifact" in out
        assert "injected:" in out
        assert "same/different" in out

    def test_artifact_mode_matches_live_mode(self, capsys, tmp_path):
        artifact = tmp_path / "s27.rfd"
        assert main(["pack", "s27", "--calls", "2", "--out", str(artifact)]) == 0
        capsys.readouterr()
        assert main(
            ["diagnose", "--artifact", str(artifact), "--fault", "G11/sa0"]
        ) == 0
        served = capsys.readouterr().out
        assert main(["diagnose", "s27", "--calls", "2", "--fault", "G11/sa0"]) == 0
        live = capsys.readouterr().out
        # Same candidates, kind by kind; only the artifact banner differs.
        assert served.split("injected:")[1] == live.split("injected:")[1]

    def test_diagnose_requires_circuit_or_artifact(self, capsys):
        assert main(["diagnose"]) == 1
        assert "exactly one of" in capsys.readouterr().err

    def test_diagnose_rejects_both_sources(self, capsys, tmp_path):
        assert main(["diagnose", "s27", "--artifact", str(tmp_path / "x.rfd")]) == 1
        assert "exactly one of" in capsys.readouterr().err

    def test_diagnose_rejects_bad_artifact(self, capsys, tmp_path):
        bogus = tmp_path / "bogus.rfd"
        bogus.write_bytes(b"not an artifact at all")
        assert main(["diagnose", "--artifact", str(bogus)]) == 1
        assert "diagnose:" in capsys.readouterr().err

    def test_diagnose_empty_dictionary_is_a_clean_error(self, capsys, tmp_path):
        # A dictionary over zero faults (satellite: no ZeroDivisionError).
        from repro.api import DictionaryConfig, build
        from repro.store import save_artifact
        from tests.util import random_table

        empty = build(
            random_table(0, 4, 2, seed=0),
            config=DictionaryConfig(seed=0, calls1=1),
        )
        artifact = tmp_path / "empty.rfd"
        save_artifact(empty, artifact)
        assert main(["diagnose", "--artifact", str(artifact)]) == 1
        err = capsys.readouterr().err
        assert "no faults" in err
        # The message must point at the repair path: the 'pack' workflow.
        assert "pack" in err and "--artifact" in err

    def test_diagnose_cache_dir_reuses_build(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        assert main(
            ["diagnose", "s27", "--calls", "2", "--cache-dir", str(cache)]
        ) == 0
        capsys.readouterr()
        assert list(cache.glob("*.rfd"))
        assert main(
            ["diagnose", "s27", "--calls", "2", "--cache-dir", str(cache),
             "--metrics-out", "-"]
        ) == 0
        out = capsys.readouterr().out
        import json

        snapshot = json.loads(out)
        assert snapshot["counters"]["store.cache_hits"] == 1


class TestServeCommand:
    @pytest.fixture()
    def artifact(self, tmp_path, capsys):
        path = tmp_path / "s27.rfd"
        assert main(["pack", "s27", "--calls", "2", "--out", str(path)]) == 0
        capsys.readouterr()
        return path

    def _write_requests(self, tmp_path, docs):
        import json

        path = tmp_path / "requests.jsonl"
        path.write_text("".join(json.dumps(doc) + "\n" for doc in docs))
        return path

    def test_serve_batch_from_artifact_only(self, capsys, tmp_path, artifact):
        # No circuit files involved: requests against the packed artifact.
        import json

        requests = self._write_requests(
            tmp_path,
            [
                {"id": "chip-1", "fault": "G11/sa0"},
                {"id": "chip-2", "observations": [[0, []], [1, [0]]]},
            ],
        )
        assert main(["serve", str(requests), "--artifact", str(artifact)]) == 0
        captured = capsys.readouterr()
        outcomes = [json.loads(line) for line in captured.out.splitlines()]
        assert [o["id"] for o in outcomes] == ["chip-1", "chip-2"]
        assert all(o["code"] == "ok" for o in outcomes)
        assert outcomes[0]["exact"] == ["G11/sa0"]
        assert "narrowing" in outcomes[1]
        assert "served 2 requests" in captured.err

    def test_degraded_requests_do_not_fail_the_batch(
        self, capsys, tmp_path, artifact
    ):
        import json

        corrupt = tmp_path / "corrupt.rfd"
        corrupt.write_bytes(artifact.read_bytes()[:40])  # truncated preamble
        requests = self._write_requests(
            tmp_path,
            [
                {"id": "good", "fault": "G11/sa0"},
                {"id": "hurt", "fault": "G11/sa0", "artifact": str(corrupt)},
                {"id": "odd", "observed": [[0]]},
            ],
        )
        out = tmp_path / "outcomes.jsonl"
        assert main(
            ["serve", str(requests), "--artifact", str(artifact),
             "--out", str(out), "--max-retries", "1", "--metrics-out", "-"]
        ) == 0
        captured = capsys.readouterr()
        outcomes = {
            doc["id"]: doc
            for doc in map(json.loads, out.read_text().splitlines())
        }
        assert outcomes["good"]["code"] == "ok"
        assert outcomes["hurt"]["code"] == "artifact_error"
        assert outcomes["hurt"]["attempts"] == 2  # retried once
        assert outcomes["odd"]["code"] == "unmodeled_response"
        snapshot = json.loads(captured.out)
        counters = snapshot["counters"]
        assert counters["serve.outcomes.ok"] == 1
        assert counters["serve.outcomes.artifact_error"] == 1
        assert counters["serve.outcomes.unmodeled_response"] == 1
        assert counters["serve.retries"] == 1

    def test_serve_rejects_unreadable_request_file(self, capsys, tmp_path):
        assert main(["serve", str(tmp_path / "missing.jsonl")]) == 1
        assert "cannot read requests" in capsys.readouterr().err

    def test_serve_rejects_empty_batch(self, capsys, tmp_path, artifact):
        requests = tmp_path / "empty.jsonl"
        requests.write_text("\n\n")
        assert main(
            ["serve", str(requests), "--artifact", str(artifact)]
        ) == 1
        assert "no requests" in capsys.readouterr().err


class TestConvert:
    def test_bench_to_verilog_and_back(self, tmp_path):
        from repro.circuit import bench, load_circuit

        source = tmp_path / "s27.bench"
        bench.dump(load_circuit("s27"), source)
        verilog_path = tmp_path / "s27.v"
        assert main(["convert", str(source), str(verilog_path)]) == 0
        back = tmp_path / "back.bench"
        assert main(["convert", str(verilog_path), str(back)]) == 0
        again = bench.load(back)
        assert again.stats() == load_circuit("s27").stats()

    def test_unsupported_extension(self, tmp_path, capsys):
        src = tmp_path / "x.edif"
        src.write_text("")
        assert main(["convert", str(src), str(tmp_path / "y.bench")]) == 1
