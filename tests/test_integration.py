"""End-to-end pipeline integration tests.

One small circuit is pushed through the entire system — generation, scan,
collapsing, ATPG (both engines), response capture, all dictionary
organisations, serialization, and diagnosis — with cross-checks at every
hand-off.  This is the "does the whole machine hang together" suite.
"""

import pytest

from repro import (
    Diagnoser,
    DictionarySizes,
    FullDictionary,
    PassFailDictionary,
    ResponseTable,
    collapse,
    generate_diagnostic_tests,
    load_circuit,
    observe_fault,
    prepare_for_test,
)
from repro.atpg import SatAtpg, Status, generate_ndetect_tests
from repro.circuit import GeneratorSpec, full_scan, generate_netlist
from repro.dictionaries import pack_samediff, unpack_samediff
from repro.diagnosis import TwoStageDiagnoser
from repro.sim import FaultSimulator
from tests.util import build_sd


@pytest.fixture(scope="module")
def pipeline():
    """The full flow on a fresh 40-gate random sequential circuit."""
    spec = GeneratorSpec("it", n_inputs=6, n_outputs=3, n_flip_flops=3, n_gates=40, seed=77)
    netlist, _ = full_scan(generate_netlist(spec))
    faults = collapse(netlist)
    tests, report = generate_diagnostic_tests(netlist, faults, seed=7)
    simulator = FaultSimulator(netlist, tests)
    detected = [f for f in faults if simulator.detection_word(f)]
    table = ResponseTable.build(netlist, detected, tests)
    samediff, build = build_sd(table, calls=20, seed=7)
    return netlist, faults, tests, report, table, samediff, build


class TestPipeline:
    def test_test_generation_classified_everything(self, pipeline):
        _, faults, _, report, _, _, _ = pipeline
        generation = report.generation
        classified = (
            len(generation.detected)
            + len(generation.untestable)
            + len(generation.aborted)
        )
        assert classified == len(faults)
        assert generation.fault_efficiency > 0.9

    def test_untestable_confirmed_by_sat(self, pipeline):
        netlist, _, _, report, _, _, _ = pipeline
        engine = SatAtpg(netlist)
        for fault in report.generation.untestable[:10]:
            assert engine.generate(fault).status is Status.UNTESTABLE, str(fault)

    def test_dictionary_hierarchy(self, pipeline):
        _, _, _, _, table, samediff, _ = pipeline
        full = FullDictionary(table)
        passfail = PassFailDictionary(table)
        assert (
            full.indistinguished_pairs()
            <= samediff.indistinguished_pairs()
            <= passfail.indistinguished_pairs()
        )
        sizes = DictionarySizes.of(table)
        assert sizes.pass_fail < sizes.same_different < sizes.full

    def test_sd_serialization_roundtrip(self, pipeline):
        _, _, _, _, table, samediff, _ = pipeline
        restored = unpack_samediff(pack_samediff(samediff), table)
        assert restored.indistinguished_pairs() == samediff.indistinguished_pairs()

    def test_every_detected_fault_diagnosable(self, pipeline):
        netlist, _, tests, _, table, samediff, _ = pipeline
        diagnoser = Diagnoser(samediff)
        for i in range(0, table.n_faults, 7):
            observed = observe_fault(netlist, tests, table.faults[i])
            diagnosis = diagnoser.diagnose(observed)
            assert table.faults[i] in diagnosis.exact

    def test_two_stage_confirms_uniquely_where_full_does(self, pipeline):
        netlist, _, tests, _, table, samediff, _ = pipeline
        full = Diagnoser(FullDictionary(table))
        stage = TwoStageDiagnoser(netlist, tests, samediff)
        for i in range(0, table.n_faults, 11):
            observed = observe_fault(netlist, tests, table.faults[i])
            confirmed = set(stage.diagnose(observed).confirmed)
            exact_full = set(full.diagnose(observed).exact)
            assert confirmed == exact_full

    def test_build_report_consistent(self, pipeline):
        _, _, _, _, table, samediff, build = pipeline
        assert (
            build.indistinguished_procedure2 == samediff.indistinguished_pairs()
        )
        assert build.procedure1_calls >= 1


class TestEmbeddedCircuitPipeline:
    def test_s27_ndetect_dictionary_reaches_full(self, s27_scan, s27_faults):
        """The paper's headline on the smallest real circuit."""
        tests, _ = generate_ndetect_tests(s27_scan, s27_faults, n=10, seed=0)
        simulator = FaultSimulator(s27_scan, tests)
        detected = [f for f in s27_faults if simulator.detection_word(f)]
        table = ResponseTable.build(s27_scan, detected, tests)
        samediff, _ = build_sd(table, calls=50, seed=0)
        full = FullDictionary(table)
        assert samediff.indistinguished_pairs() == full.indistinguished_pairs()

    def test_public_api_surface(self):
        """Everything advertised in repro.__all__ resolves."""
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_subpackage_api_surfaces(self):
        import repro.atpg
        import repro.circuit
        import repro.diagnosis
        import repro.dictionaries
        import repro.experiments
        import repro.faults
        import repro.sim

        for module in (
            repro.atpg,
            repro.circuit,
            repro.diagnosis,
            repro.dictionaries,
            repro.experiments,
            repro.faults,
            repro.sim,
        ):
            for name in module.__all__:
                assert getattr(module, name) is not None, (module.__name__, name)
