"""Shared test helpers (importable as ``tests.util``)."""

from __future__ import annotations

import random
import sys
from contextlib import contextmanager

from repro.api import DictionaryConfig, build
from repro.faults import Fault
from repro.sim import ResponseTable, TestSet


def build_sd(
    table,
    *,
    calls=100,
    lower=10,
    seed=0,
    replace=True,
    jobs=1,
    progress=None,
    backend=None,
):
    """Build a same/different dictionary through the public facade.

    Returns ``(dictionary, report)`` like the legacy entry point did, so
    tests keep their two-value unpacking while exercising
    :func:`repro.api.build` (the loose-kwarg shapes now warn).
    """
    built = build(
        table,
        config=DictionaryConfig(
            seed=seed,
            calls1=calls,
            lower=lower,
            jobs=jobs,
            procedure2=replace,
            backend=backend,
        ),
        progress=progress,
    )
    return built.dictionary, built.report


def random_table(n_faults, n_tests, n_outputs, seed, density=0.5):
    """A random synthetic ResponseTable (no circuit involved).

    ``density`` is the probability that a (fault, test) pair fails at
    all; failing pairs get a uniform non-empty output signature.
    """
    rng = random.Random(seed)
    faults = [Fault(f"f{i}", 0) for i in range(n_faults)]
    tests = TestSet(("i0",), [0] * n_tests)
    failing = []
    for _ in range(n_faults):
        row = {}
        for j in range(n_tests):
            if rng.random() < density:
                outputs = tuple(
                    sorted(rng.sample(range(n_outputs), rng.randint(1, n_outputs)))
                )
                row[j] = outputs
        failing.append(row)
    good = {f"z{o}": rng.getrandbits(n_tests) for o in range(n_outputs)}
    return ResponseTable(
        tuple(f"z{o}" for o in range(n_outputs)), faults, tests, failing, good
    )


def distinct_table(n_faults, n_tests):
    """Every fault fails every test with its own unique signature ``(i,)``.

    The adversarial shape where each test's candidate set is maximal
    (``|Z_j| == n_faults + 1``) and any failing candidate splits a
    singleton off — the full dictionary resolves everything, so builds
    hit the restart ceiling on the first restart.
    """
    faults = [Fault(f"f{i}", 0) for i in range(n_faults)]
    tests = TestSet(("i0",), [0] * n_tests)
    failing = [
        {j: (i,) for j in range(n_tests)} for i in range(n_faults)
    ]
    good = {f"z{o}": 0 for o in range(max(n_faults, 1))}
    return ResponseTable(
        tuple(f"z{o}" for o in range(max(n_faults, 1))),
        faults, tests, failing, good,
    )


@contextmanager
def numpy_import_blocked():
    """Make ``import numpy`` raise ImportError inside the block.

    Pins the vector backend's stdlib-``array`` fallback the way a
    numpy-less interpreter would: a ``None`` entry in ``sys.modules``
    makes any import attempt fail.  Restores the previous state (and
    evicts nothing else) on exit.
    """
    had = "numpy" in sys.modules
    previous = sys.modules.get("numpy")
    sys.modules["numpy"] = None
    try:
        yield
    finally:
        if had:
            sys.modules["numpy"] = previous
        else:
            del sys.modules["numpy"]


@contextmanager
def fallback_vector_registered():
    """Re-register ``vector`` as its forced-fallback construction.

    Inside the block, ``get_backend("vector")`` — and therefore builds
    with ``backend="vector"`` — run the pure-Python word-array path even
    when numpy is importable.  The real registration is restored on exit.
    """
    from repro.kernels import register_backend
    from repro.kernels.base import _DESCRIPTIONS
    from repro.kernels.vector import VectorBackend

    description = _DESCRIPTIONS.get("vector", "")
    register_backend(
        "vector",
        lambda: VectorBackend(force_fallback=True),
        description,
    )
    try:
        yield
    finally:
        register_backend("vector", VectorBackend, description)
