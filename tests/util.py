"""Shared test helpers (importable as ``tests.util``)."""

from __future__ import annotations

import random

from repro.api import DictionaryConfig, build
from repro.faults import Fault
from repro.sim import ResponseTable, TestSet


def build_sd(
    table,
    *,
    calls=100,
    lower=10,
    seed=0,
    replace=True,
    jobs=1,
    progress=None,
    backend=None,
):
    """Build a same/different dictionary through the public facade.

    Returns ``(dictionary, report)`` like the legacy entry point did, so
    tests keep their two-value unpacking while exercising
    :func:`repro.api.build` (the loose-kwarg shapes now warn).
    """
    built = build(
        table,
        config=DictionaryConfig(
            seed=seed,
            calls1=calls,
            lower=lower,
            jobs=jobs,
            procedure2=replace,
            backend=backend,
        ),
        progress=progress,
    )
    return built.dictionary, built.report


def random_table(n_faults, n_tests, n_outputs, seed, density=0.5):
    """A random synthetic ResponseTable (no circuit involved).

    ``density`` is the probability that a (fault, test) pair fails at
    all; failing pairs get a uniform non-empty output signature.
    """
    rng = random.Random(seed)
    faults = [Fault(f"f{i}", 0) for i in range(n_faults)]
    tests = TestSet(("i0",), [0] * n_tests)
    failing = []
    for _ in range(n_faults):
        row = {}
        for j in range(n_tests):
            if rng.random() < density:
                outputs = tuple(
                    sorted(rng.sample(range(n_outputs), rng.randint(1, n_outputs)))
                )
                row[j] = outputs
        failing.append(row)
    good = {f"z{o}": rng.getrandbits(n_tests) for o in range(n_outputs)}
    return ResponseTable(
        tuple(f"z{o}" for o in range(n_outputs)), faults, tests, failing, good
    )
