#!/usr/bin/env python
"""Diff ``BENCH_*.json`` benchmark results against committed baselines.

Thin script front end over :mod:`repro.obs.benchreport` (the same logic
serves the ``repro-fd bench-report`` subcommand).  Typical flows::

    # run the suites (each writes BENCH_<area>.json), then:
    python tools/bench_report.py                  # trajectory table
    python tools/bench_report.py --check          # CI gate: nonzero on
                                                  # regression beyond tolerance
    python tools/bench_report.py --update         # adopt current results as
                                                  # the new baselines

See ``docs/benchmarking.md`` for the schema and the baseline-refresh
workflow.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.benchreport import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
