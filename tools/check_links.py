#!/usr/bin/env python
"""Check every relative markdown link (and anchor) in docs/ and README.md.

For each ``[text](target)`` link in the checked pages:

* ``http(s)://`` targets are skipped (no network in CI);
* relative path targets must exist on disk, resolved against the page's
  own directory;
* ``#anchor`` fragments — standalone or after a path — must match a
  heading in the target page, using GitHub's slug rules (lowercase,
  spaces to dashes, punctuation dropped).

Exit 0 when every link resolves, 1 with a per-link report otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

LINK = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]+)\)")
IMAGE = re.compile(r"!\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)


def checked_pages():
    pages = [REPO_ROOT / "README.md"]
    pages += sorted((REPO_ROOT / "docs").glob("*.md"))
    return [page for page in pages if page.exists()]


def github_slug(heading: str) -> str:
    """GitHub's heading-to-anchor slug: the rules the web UI applies."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # unwrap inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(page: Path) -> set:
    text = CODE_FENCE.sub("", page.read_text())
    slugs = set()
    counts = {}
    for match in HEADING.finditer(text):
        slug = github_slug(match.group(1))
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        slugs.add(slug if seen == 0 else f"{slug}-{seen}")
    return slugs


def check_page(page: Path, problems: list) -> None:
    text = CODE_FENCE.sub("", page.read_text())
    targets = [m.group(1) for m in LINK.finditer(text)]
    targets += [m.group(1) for m in IMAGE.finditer(text)]
    for target in targets:
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, fragment = target.partition("#")
        if path_part:
            resolved = (page.parent / path_part).resolve()
            if not resolved.exists():
                problems.append(f"{page.relative_to(REPO_ROOT)}: broken link "
                                f"target {target!r} ({path_part} not found)")
                continue
            anchor_page = resolved
        else:
            anchor_page = page
        if fragment:
            if anchor_page.suffix != ".md" or not anchor_page.is_file():
                problems.append(f"{page.relative_to(REPO_ROOT)}: anchor on "
                                f"non-markdown target {target!r}")
                continue
            if fragment not in anchors_of(anchor_page):
                problems.append(f"{page.relative_to(REPO_ROOT)}: anchor "
                                f"{target!r} matches no heading in "
                                f"{anchor_page.relative_to(REPO_ROOT)}")


def main() -> int:
    problems: list = []
    pages = checked_pages()
    for page in pages:
        check_page(page, problems)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"{len(problems)} broken link(s) across {len(pages)} pages",
              file=sys.stderr)
        return 1
    print(f"all links resolve across {len(pages)} pages")
    return 0


if __name__ == "__main__":
    sys.exit(main())
