"""SIGKILL a checkpointed proxy build mid-restart, then resume it.

The CI ``scale`` job's interrupt/resume check (see docs/scaling.md): a
child process starts a same/different build on an ITC-99-scale proxy
table with ``checkpoint_dir`` set and a progress hook that sleeps after
every folded Procedure 1 restart — widening the window in which the
RFDC checkpoint is already durable but the build is still running.  As
soon as the first ``*.rfdc`` file appears the child is SIGKILL'd, the
build is resumed in-process, and the resumed artifact is required to
match an uninterrupted build: same semantic digest, same saved content
hash, and no checkpoint left behind.

Runs locally too::

    PYTHONPATH=src python tools/ci_scale_interrupt.py --faults 10000

Exit status 0 only if every invariant holds.
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import DictionaryConfig, build  # noqa: E402
from repro.circuit.generate import proxy_response_table  # noqa: E402
from repro.store import load_artifact, save_artifact, semantic_digest  # noqa: E402

_DRIVER = """
import sys, time
sys.path.insert(0, {src!r})
from repro.api import DictionaryConfig, build
from repro.circuit.generate import proxy_response_table

class SlowProgress:
    # The checkpoint observer runs before progress is reported, so by
    # the time this sleeps the fold state is already on disk.
    def report(self, stage, done, total=None, **info):
        if stage == "build.procedure1":
            time.sleep(0.25)

table = proxy_response_table({preset!r}, n_faults={faults}, n_tests={tests})
build(
    table,
    config=DictionaryConfig(seed={seed}, calls1={calls}),
    checkpoint_dir={ckpt!r},
    progress=SlowProgress(),
)
"""


def interrupt_and_resume(args: argparse.Namespace, ckpt_dir: Path) -> None:
    table = proxy_response_table(
        args.preset, n_faults=args.faults, n_tests=args.tests
    )
    config = DictionaryConfig(seed=args.seed, calls1=args.calls)
    driver = _DRIVER.format(
        src=str(REPO_ROOT / "src"),
        preset=args.preset,
        faults=args.faults,
        tests=args.tests,
        seed=args.seed,
        calls=args.calls,
        ckpt=str(ckpt_dir),
    )
    child = subprocess.Popen(
        [sys.executable, "-c", driver],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    try:
        deadline = time.monotonic() + args.timeout
        while not list(ckpt_dir.glob("*.rfdc")):
            if child.poll() is not None:
                raise SystemExit(
                    "driver exited before writing a checkpoint:\n"
                    + child.stderr.read().decode()
                )
            if time.monotonic() > deadline:
                raise SystemExit(
                    f"no checkpoint appeared within {args.timeout}s"
                )
            time.sleep(0.01)
        os.kill(child.pid, signal.SIGKILL)
        child.wait(timeout=30)
    finally:
        if child.poll() is None:
            child.kill()
            child.wait(timeout=30)
    if child.returncode != -signal.SIGKILL:
        raise SystemExit(f"unexpected driver exit code {child.returncode}")
    if not list(ckpt_dir.glob("*.rfdc")):
        raise SystemExit("the kill must leave the checkpoint behind")
    print(f"killed pid {child.pid} mid-restart; resuming from {ckpt_dir}")

    resumed = build(table, config=config, checkpoint_dir=ckpt_dir, resume=True)
    if list(ckpt_dir.glob("*.rfdc")):
        raise SystemExit("completion must remove the checkpoint")
    reference = build(table, config=config)
    if semantic_digest(resumed) != semantic_digest(reference):
        raise SystemExit("resumed build differs from the uninterrupted build")

    resumed_path = ckpt_dir / "resumed.rfd"
    reference_path = ckpt_dir / "reference.rfd"
    resumed_hash = save_artifact(resumed, resumed_path)
    reference_hash = save_artifact(reference, reference_path)
    if resumed_hash != reference_hash:
        raise SystemExit("resumed artifact hash differs from the reference")
    if semantic_digest(load_artifact(resumed_path)) != semantic_digest(
        load_artifact(reference_path)
    ):
        raise SystemExit("reloaded artifacts disagree semantically")
    print(
        f"resumed build matches the uninterrupted build "
        f"(content hash {resumed_hash[:12]}, "
        f"{resumed.report.procedure1_calls} Procedure 1 calls)"
    )


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0], prog="ci_scale_interrupt"
    )
    parser.add_argument("--preset", default="b14p")
    parser.add_argument("--faults", type=int, default=10_000)
    parser.add_argument("--tests", type=int, default=48)
    parser.add_argument("--calls", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--timeout",
        type=float,
        default=180.0,
        help="seconds to wait for the first checkpoint before giving up",
    )
    args = parser.parse_args(argv)
    with tempfile.TemporaryDirectory(prefix="scale-interrupt-") as tmp:
        interrupt_and_resume(args, Path(tmp) / "ckpt")


if __name__ == "__main__":
    main()
