#!/usr/bin/env python
"""Profile the hot paths of each pipeline area with cProfile.

Every future optimization PR should start from a named hot path, not a
guess.  This harness runs one representative workload per area —

* ``build``     — same/different construction (Procedures 1 + 2),
* ``kernels``   — the packed backend's candidate-scoring sweep,
* ``parallel``  — the restart scheduler with ``jobs=2`` (worker-process
                  internals run out-of-process and are profiled via the
                  ``kernels``/``build`` areas instead),
* ``partition`` — the partition-refinement path: class-major
                  ``refine_scores`` sweeps plus a fault-block-sharded
                  Procedure 1 restart on an ITC-99-class proxy table,
* ``artifact``  — artifact save/load round trips (the serve cold path),
* ``serve``     — a warm-pool request batch through ``DiagnosisServer``
                  (``workers=1`` keeps the work on the profiled thread)

— under ``cProfile``, extracts the top-N functions by cumulative time
(first-party frames under ``src/repro`` first), prints them, and writes
``BENCH_profile_<area>.json`` in the same schema every benchmark suite
emits, so profiles travel with the perf trajectory.

Usage::

    python tools/profile_hotpaths.py                 # all areas, top 10
    python tools/profile_hotpaths.py --area serve --top 5
    REPRO_BENCH_QUICK=1 python tools/profile_hotpaths.py   # smaller workloads

``--pstats DIR`` additionally dumps raw ``.pstats`` files for
``snakeviz``/``gprof2dot``-style exploration.
"""

from __future__ import annotations

import argparse
import cProfile
import os
import pstats
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.bench import BenchCase, BenchResult  # noqa: E402

QUICK = bool(
    os.environ.get("REPRO_BENCH_QUICK") or os.environ.get("REPRO_EXAMPLES_QUICK")
)
CALLS = 10 if QUICK else 40
REQUESTS = 50 if QUICK else 300
ARTIFACT_ROUNDS = 5 if QUICK else 20
KERNEL_SWEEPS = 2 if QUICK else 5
PARTITION_FAULTS = 1500 if QUICK else 4000
PARTITION_TESTS = 24 if QUICK else 48


# ----------------------------------------------------------------------
# per-area workloads: prepare() builds the inputs un-profiled and returns
# the zero-argument callable that cProfile runs.
# ----------------------------------------------------------------------

def _table(circuit="p208", ttype="diag"):
    from repro.experiments.table6 import response_table_for

    return response_table_for(circuit, ttype, 0)[1]


def prepare_build():
    from repro.api import DictionaryConfig, build

    table = _table()
    return lambda: build(table, config=DictionaryConfig(seed=0, calls1=CALLS))


def prepare_kernels():
    from repro.kernels import get_backend
    from repro.kernels.interning import intern_response_table

    table = _table(ttype="10det")
    intern_response_table(table)
    table.interned
    backend = get_backend("packed")

    def run():
        for _ in range(KERNEL_SWEEPS):
            backend.procedure1(table, range(table.n_tests), 10, {})

    return run


def prepare_parallel():
    from repro.api import DictionaryConfig, build

    table = _table()
    config = DictionaryConfig(seed=0, calls1=CALLS, jobs=2, procedure2=False)
    return lambda: build(table, config=config)


def prepare_partition():
    from repro.circuit.generate import proxy_response_table
    from repro.parallel.hierarchy import FaultBlockPlan, sharded_procedure1
    from repro.parallel.seeds import restart_order

    table = proxy_response_table(
        "b14p", n_faults=PARTITION_FAULTS, n_tests=PARTITION_TESTS
    )
    table.interned
    plan = FaultBlockPlan(table.n_faults, 4)
    orders = [restart_order(0, r, table.n_tests) for r in range(3)]

    def run():
        for order in orders:
            sharded_procedure1(table, order, 10, plan)

    return run


def prepare_artifact(workdir: Path):
    from repro.api import DictionaryConfig, build
    from repro.store import load_artifact, save_artifact

    built = build(_table(), config=DictionaryConfig(seed=0, calls1=5))
    path = workdir / "profile.rfd"

    def run():
        for _ in range(ARTIFACT_ROUNDS):
            save_artifact(built, path)
            load_artifact(path)

    return run


def prepare_serve(workdir: Path):
    from repro.api import DictionaryConfig, build
    from repro.serve import DiagnosisRequest, DiagnosisServer, ServeConfig
    from repro.store import save_artifact

    built = build(_table(), config=DictionaryConfig(seed=0, calls1=5))
    path = workdir / "profile-serve.rfd"
    save_artifact(built, path)
    faults = built.table.faults
    requests = [
        DiagnosisRequest(request_id=f"r{i}", fault=str(faults[(i * 13) % len(faults)]))
        for i in range(REQUESTS)
    ]
    # workers=1 serves on the calling thread — the one cProfile sees.
    server = DiagnosisServer(ServeConfig(workers=1, pool_size=2),
                             default_artifact=str(path))
    server.pool.get(path)
    return lambda: server.diagnose_batch(requests)


AREAS = {
    "build": lambda workdir: prepare_build(),
    "kernels": lambda workdir: prepare_kernels(),
    "parallel": lambda workdir: prepare_parallel(),
    "partition": lambda workdir: prepare_partition(),
    "artifact": prepare_artifact,
    "serve": prepare_serve,
}


# ----------------------------------------------------------------------
# profiling + extraction
# ----------------------------------------------------------------------

def _frame_name(key) -> dict:
    filename, line, func = key
    path = Path(filename)
    try:
        shown = str(path.relative_to(REPO_ROOT))
    except ValueError:
        shown = path.name
    return {"function": func, "file": shown, "line": line}


def hot_paths(stats: pstats.Stats, top: int) -> list:
    """Top functions by cumulative time, first-party frames first."""
    first_party, third_party = [], []
    for key, (cc, nc, tt, ct, _callers) in stats.stats.items():
        entry = _frame_name(key)
        entry.update({
            "ncalls": nc,
            "tottime_s": round(tt, 6),
            "cumtime_s": round(ct, 6),
        })
        bucket = (
            first_party if f"src{os.sep}repro" in str(Path(key[0]))
            else third_party
        )
        bucket.append(entry)
    for bucket in (first_party, third_party):
        bucket.sort(key=lambda e: e["cumtime_s"], reverse=True)
    return (first_party + third_party)[:top]


def profile_area(area: str, workdir: Path, top: int,
                 pstats_dir: Path | None) -> BenchResult:
    workload = AREAS[area](workdir)
    workload()  # warm caches so first-touch costs don't dominate the profile
    profiler = cProfile.Profile()
    profiler.enable()
    workload()
    profiler.disable()
    stats = pstats.Stats(profiler)
    if pstats_dir is not None:
        pstats_dir.mkdir(parents=True, exist_ok=True)
        stats.dump_stats(pstats_dir / f"{area}.pstats")

    paths = hot_paths(stats, top)
    case = BenchCase(name=f"hotpaths[{area}]", params={"area": area})
    case.rounds = 1
    case.wall_seconds = round(stats.total_tt, 6)
    case.info = {"quick": QUICK, "hot_paths": paths}
    result = BenchResult(area=f"profile_{area}", quick=QUICK, cases=[case])

    print(f"\n== {area}: top {min(3, len(paths))} hot paths "
          f"(profiled {stats.total_tt:.3f}s) ==")
    for entry in paths[:3]:
        print(
            f"  {entry['cumtime_s']:8.3f}s cum  {entry['tottime_s']:8.3f}s self"
            f"  {entry['ncalls']:>8}x  "
            f"{entry['file']}:{entry['line']} {entry['function']}"
        )
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="cProfile the pipeline's hot paths, one area at a time"
    )
    parser.add_argument(
        "--area", choices=sorted(AREAS) + ["all"], default="all",
        help="which pipeline area to profile (default: all)",
    )
    parser.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="hot-path entries to keep per area (default 10)",
    )
    parser.add_argument(
        "--out", metavar="DIR",
        default=os.environ.get("REPRO_BENCH_OUT", "."),
        help="directory for BENCH_profile_<area>.json "
        "(default: $REPRO_BENCH_OUT or the current directory)",
    )
    parser.add_argument(
        "--pstats", metavar="DIR", default=None,
        help="also dump raw .pstats files here for snakeviz/gprof2dot",
    )
    args = parser.parse_args(argv)

    import tempfile

    areas = sorted(AREAS) if args.area == "all" else [args.area]
    out_dir = Path(args.out)
    pstats_dir = Path(args.pstats) if args.pstats else None
    with tempfile.TemporaryDirectory(prefix="repro-profile-") as tmp:
        for area in areas:
            result = profile_area(area, Path(tmp), args.top, pstats_dir)
            path = result.write(out_dir)
            print(f"  wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
